package harden

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/ser"
	"repro/internal/sigprob"
	"repro/internal/simulate"
	"strings"
)

func sample(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(`
INPUT(a)
INPUT(b)
INPUT(cc)
OUTPUT(y)
g1 = AND(a, b)
g2 = OR(g1, cc)
y = NOT(g2)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTMRStructure(t *testing.T) {
	c := sample(t)
	h, err := TMR(c, []netlist.ID{c.ByName("g1")})
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != c.N()+Overhead(1) {
		t.Fatalf("node count %d, want %d", h.N(), c.N()+Overhead(1))
	}
	for _, name := range []string{"g1_r1", "g1_r2", "g1_v1", "g1_v2", "g1_v3", "g1_v"} {
		if h.ByName(name) == netlist.InvalidID {
			t.Errorf("missing %s", name)
		}
	}
	// g2 must now read the voter, not g1.
	g2 := h.Node(h.ByName("g2"))
	if h.NameOf(g2.Fanin[0]) != "g1_v" {
		t.Errorf("g2 fanin = %s, want g1_v", h.NameOf(g2.Fanin[0]))
	}
}

// TestTMRLeavesInputCircuitIntact: TMR must not mutate its input. The
// replica nodes are seeded from the original's fanin lists, which alias the
// circuit's shared CSR storage; a missing copy there lets the cascaded-
// protection rewire write voter IDs (out of range for the input circuit)
// into the caller's netlist.
func TestTMRLeavesInputCircuitIntact(t *testing.T) {
	c := sample(t)
	var before [][]netlist.ID
	for i := 0; i < c.N(); i++ {
		before = append(before, append([]netlist.ID(nil), c.Node(netlist.ID(i)).Fanin...))
	}
	// Protect two gates where one consumes the other (g2 reads g1), the
	// case that forces rewiring of replica fanins.
	if _, err := TMR(c, []netlist.ID{c.ByName("g1"), c.ByName("g2")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		got := c.Node(netlist.ID(i)).Fanin
		for j, f := range got {
			if f != before[i][j] {
				t.Fatalf("TMR mutated input circuit: node %s fanin[%d] = %d, want %d",
					c.NameOf(netlist.ID(i)), j, f, before[i][j])
			}
		}
	}
}

// TestTMRFunctionalEquivalence: the transformed circuit computes the same
// outputs for every input assignment.
func TestTMRFunctionalEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		c := gen.SmallRandom(seed + 60)
		// Protect three scattered gates.
		var sel []netlist.ID
		for i := range c.Nodes {
			if c.Nodes[i].Kind.IsGate() && len(sel) < 3 && i%7 == 3 {
				sel = append(sel, netlist.ID(i))
			}
		}
		if len(sel) == 0 {
			continue
		}
		h, err := TMR(c, sel)
		if err != nil {
			t.Fatal(err)
		}
		spC, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		spH, err := exact.SignalProb(h)
		if err != nil {
			t.Fatal(err)
		}
		// Equivalence check via exact signal probabilities of the POs plus
		// bitwise simulation on shared random vectors.
		for i, po := range c.POs {
			hpo := h.POs[i]
			if math.Abs(spC[po]-spH[hpo]) > 1e-12 {
				t.Fatalf("seed %d: PO %s SP changed: %v -> %v",
					seed, c.NameOf(po), spC[po], spH[hpo])
			}
		}
		ec, eh := simulate.NewEngine(c), simulate.NewEngine(h)
		src := simulate.NewVectorSource(seed, nil)
		for trial := 0; trial < 20; trial++ {
			for _, s := range c.Sources() {
				w := src.Word(s)
				ec.SetSource(s, w)
				eh.SetSource(h.ByName(c.NameOf(s)), w)
			}
			ec.Run()
			eh.Run()
			for i, po := range c.POs {
				if ec.Value(po) != eh.Value(h.POs[i]) {
					t.Fatalf("seed %d: outputs diverge at PO %s", seed, c.NameOf(po))
				}
			}
		}
	}
}

// TestTMRMasksProtectedGate: an SEU in the protected gate (or either
// replica) is structurally masked — exact P_sensitized drops to 0 — while
// the EPP approximation stays conservative (it cannot see that the replicas
// carry identical values, so it reports a non-negative estimate).
func TestTMRMasksProtectedGate(t *testing.T) {
	c := sample(t)
	g1 := c.ByName("g1")
	h, err := TMR(c, []netlist.ID{g1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g1", "g1_r1", "g1_r2"} {
		p, err := exact.PSensitized(h, h.ByName(name))
		if err != nil {
			t.Fatal(err)
		}
		if p != 0 {
			t.Errorf("protected copy %s: exact P_sens = %v, want 0", name, p)
		}
	}
	// Voter output is a new single point of failure (as in real TMR).
	p, err := exact.PSensitized(h, h.ByName("g1_v"))
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Error("voter output should remain sensitizable")
	}
	// EPP is conservative on the protected copies (documented limitation:
	// replica correlation is invisible to the independence assumption), so
	// its estimate stays at or above the exact value of 0.
	an, err := ser.PSensitized(h, ser.Config{Method: ser.MethodEPP, Workers: 1, SP: sigprob.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	if an[h.ByName("g1")] < 0 {
		t.Error("EPP returned negative probability")
	}
}

// TestTMRCascadedProtection: two protected gates in series still mask a
// single fault in either one (the replica-rewiring subtlety).
func TestTMRCascadedProtection(t *testing.T) {
	c := sample(t)
	h, err := TMR(c, []netlist.ID{c.ByName("g1"), c.ByName("g2")})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g1", "g1_r1", "g1_r2", "g2", "g2_r1", "g2_r2"} {
		p, err := exact.PSensitized(h, h.ByName(name))
		if err != nil {
			t.Fatal(err)
		}
		if p != 0 {
			t.Errorf("cascaded: %s exact P_sens = %v, want 0", name, p)
		}
	}
	// g2's replicas must read g1's voter, not g1 directly.
	r1 := h.Node(h.ByName("g2_r1"))
	if h.NameOf(r1.Fanin[0]) != "g1_v" {
		t.Errorf("g2_r1 reads %s, want g1_v", h.NameOf(r1.Fanin[0]))
	}
}

// TestTMRReducesLogicSER: end-to-end — transform, re-estimate with the
// Monte Carlo method (which sees the masking), and compare. The textbook
// caveat applies and is asserted both ways: counting the (soft) voter gates
// as new error sites, local TMR may *increase* total SER — the voter output
// inherits the original's full observability — so the protected-logic SER
// (total minus voter contributions, i.e. assuming a rad-hard voter as real
// designs use) must drop, and the replicas must contribute exactly nothing.
func TestTMRReducesLogicSER(t *testing.T) {
	c := gen.SmallRandom(71)
	cfg := ser.Config{Method: ser.MethodMonteCarlo, MC: simulate.MCOptions{Vectors: 2048, Seed: 5}}
	before, err := ser.Estimate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Protect the top-3 gates by measured SER.
	var sel []netlist.ID
	for _, n := range before.Ranked() {
		if c.Node(n.ID).Kind.IsGate() && len(sel) < 3 {
			sel = append(sel, n.ID)
		}
	}
	h, err := TMR(c, sel)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ser.Estimate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	voterFIT := 0.0
	isVoter := func(name string) bool {
		for _, suf := range []string{"_v", "_v1", "_v2", "_v3"} {
			if strings.HasSuffix(name, suf) {
				return true
			}
		}
		return false
	}
	for _, n := range after.Nodes {
		if isVoter(n.Name) {
			voterFIT += n.SERFIT
		}
		// Protected originals and replicas are structurally masked.
		for _, s := range sel {
			base := c.NameOf(s)
			if n.Name == base || n.Name == base+"_r1" || n.Name == base+"_r2" {
				if n.PSensitized > 0.02 { // MC noise floor at 2048 vectors
					t.Errorf("protected copy %s still sensitized: %v", n.Name, n.PSensitized)
				}
			}
		}
	}
	logicFIT := after.TotalFIT - voterFIT
	t.Logf("SER before %.4g FIT; after TMR: total %.4g (soft voter), logic-only %.4g (rad-hard voter)",
		before.TotalFIT, after.TotalFIT, logicFIT)
	if logicFIT >= before.TotalFIT {
		t.Errorf("rad-hard-voter TMR did not reduce SER: %v -> %v", before.TotalFIT, logicFIT)
	}
}

// TestTMRSequentialCircuit: protecting a gate that feeds a flip-flop must
// rewire the DFF's D input through the voter, preserve the FF population
// (IDs and names), and leave the single-frame transfer function — primary
// outputs AND every FF's next state — unchanged for shared source vectors.
func TestTMRSequentialCircuit(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		c := gen.SmallRandomSequential(seed + 40)
		// Pick a gate feeding a DFF, the sequential-specific rewire case.
		var target netlist.ID = netlist.InvalidID
		for _, ff := range c.FFs {
			if d := c.Node(ff).Fanin[0]; c.Node(d).Kind.IsGate() {
				target = d
				break
			}
		}
		if target == netlist.InvalidID {
			continue // every FF reads a source directly; nothing to test here
		}
		h, err := TMR(c, []netlist.ID{target})
		if err != nil {
			t.Fatal(err)
		}
		if h.N() != c.N()+Overhead(1) {
			t.Fatalf("seed %d: node count %d, want %d", seed, h.N(), c.N()+Overhead(1))
		}
		if len(h.FFs) != len(c.FFs) {
			t.Fatalf("seed %d: FF count changed: %d -> %d", seed, len(c.FFs), len(h.FFs))
		}
		voter := h.ByName(c.NameOf(target) + "_v")
		for i, ff := range c.FFs {
			if h.FFs[i] != ff || h.NameOf(h.FFs[i]) != c.NameOf(ff) {
				t.Fatalf("seed %d: FF %d no longer preserved", seed, ff)
			}
			if c.Node(ff).Fanin[0] == target && h.Node(ff).Fanin[0] != voter {
				t.Errorf("seed %d: DFF %s still reads the protected gate, not its voter",
					seed, c.NameOf(ff))
			}
		}
		// Single-frame transfer function: treat FFs as sources, compare the
		// observation points (POs and next-state D inputs) bit for bit.
		ec, eh := simulate.NewEngine(c), simulate.NewEngine(h)
		src := simulate.NewVectorSource(seed, nil)
		for trial := 0; trial < 10; trial++ {
			for _, s := range c.Sources() {
				w := src.Word(s)
				ec.SetSource(s, w)
				eh.SetSource(s, w) // source IDs are preserved by TMR
			}
			ec.Run()
			eh.Run()
			for i, po := range c.POs {
				if ec.Value(po) != eh.Value(h.POs[i]) {
					t.Fatalf("seed %d: outputs diverge at PO %s", seed, c.NameOf(po))
				}
			}
			for _, ff := range c.FFs {
				if ec.Value(c.Node(ff).Fanin[0]) != eh.Value(h.Node(ff).Fanin[0]) {
					t.Fatalf("seed %d: next state diverges at FF %s", seed, c.NameOf(ff))
				}
			}
		}
	}
}

// TestTMREmptySelection: no selection is a (validated) copy, not an error —
// the optimizer relies on the k=0 boundary of the Overhead accounting.
func TestTMREmptySelection(t *testing.T) {
	c := sample(t)
	h, err := TMR(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != c.N() {
		t.Errorf("empty selection changed node count: %d -> %d", c.N(), h.N())
	}
}

func TestTMRRejectsNonGates(t *testing.T) {
	c := sample(t)
	if _, err := TMR(c, []netlist.ID{c.ByName("a")}); err == nil {
		t.Error("input accepted for TMR")
	}
	if _, err := TMR(c, []netlist.ID{999}); err == nil {
		t.Error("invalid ID accepted")
	}
}

func TestTMRDuplicateSelectionIdempotent(t *testing.T) {
	c := sample(t)
	g1 := c.ByName("g1")
	h, err := TMR(c, []netlist.ID{g1, g1})
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != c.N()+Overhead(1) {
		t.Errorf("duplicate selection duplicated hardware: %d nodes", h.N())
	}
}
