package sersim

import (
	"math"
	"testing"

	"repro/internal/bddsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

// TestEPPvsBDDExactOnS953 is the definitive accuracy experiment at real
// benchmark scale: EPP P_sensitized against the symbolically exact value
// (BDD miter, no independence assumption, no sampling noise) on the s953
// profile — a circuit far beyond the reach of exhaustive enumeration.
// The paper reports 4.3% difference vs random simulation on s953; we bound
// the mean error vs ground truth at the same order.
func TestEPPvsBDDExactOnS953(t *testing.T) {
	if testing.Short() {
		t.Skip("BDD miters per site are seconds each; skipped in -short")
	}
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	// Exact signal probabilities feed EPP, so the measured error is purely
	// the propagation-step independence assumption (the method's intrinsic
	// error), exactly what the paper's %Dif column tracks.
	sp, err := bddsp.SignalProb(c, nil, 1<<23)
	if err != nil {
		t.Skipf("BDD budget: %v", err)
	}
	an := core.MustNew(c, sp, core.Options{})

	sumAbs, sumTruth, n := 0.0, 0.0, 0
	worst := 0.0
	for id := 0; id < c.N(); id += 29 { // ~16 stratified sites
		truth, err := bddsp.PSensitized(c, netlist.ID(id), nil, 1<<23)
		if err != nil {
			t.Skipf("BDD budget at site %d: %v", id, err)
		}
		got := an.EPP(netlist.ID(id)).PSensitized
		d := math.Abs(got - truth)
		sumAbs += d
		sumTruth += truth
		if d > worst {
			worst = d
		}
		n++
	}
	mae := sumAbs / float64(n)
	rel := 100 * sumAbs / sumTruth
	t.Logf("s953: EPP vs BDD-exact over %d sites: MAE=%.4f, worst=%.4f, %%Dif-style=%.1f%%",
		n, mae, worst, rel)
	if rel > 25 {
		t.Errorf("relative difference %v%% is far outside the paper's accuracy regime", rel)
	}
}

// TestMCvsBDDExactOnS953: the random-simulation baseline also converges to
// the same exact values, closing the triangle (EPP ≈ exact ≈ MC).
func TestMCvsBDDExactOnS953(t *testing.T) {
	if testing.Short() {
		t.Skip("BDD miters per site are seconds each; skipped in -short")
	}
	c, err := gen.ByName("s953")
	if err != nil {
		t.Fatal(err)
	}
	mc := simulate.NewMonteCarlo(c, simulate.MCOptions{Vectors: 1 << 15, Seed: 17})
	for _, id := range []netlist.ID{5, netlist.ID(c.N() / 2), netlist.ID(c.N() - 3)} {
		truth, err := bddsp.PSensitized(c, id, nil, 1<<23)
		if err != nil {
			t.Skipf("BDD budget: %v", err)
		}
		r := mc.EPP(id)
		if math.Abs(r.PSensitized-truth) > 6*r.StdErr+1e-6 {
			t.Errorf("site %d: MC %v ± %v, exact %v", id, r.PSensitized, r.StdErr, truth)
		}
	}
}
