package sersim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API surface the way the README's
// quickstart describes it: parse, signal probabilities, one EPP query, full
// estimate, serialization.
func TestFacadeEndToEnd(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
g = NAND(a, b)
y = NOT(g)
q = DFF(y)
`
	c, err := ParseBenchString(src)
	if err != nil {
		t.Fatal(err)
	}
	sp := SignalProbabilities(c, SPConfig{})
	// y = AND(a,b) effectively: SP 0.25.
	if math.Abs(sp[c.ByName("y")]-0.25) > 1e-12 {
		t.Errorf("SP(y) = %v", sp[c.ByName("y")])
	}

	an, err := NewAnalyzer(c, sp, AnalyzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := an.EPP(c.ByName("g"))
	// g reaches y (PO) always (inverter) and q's D (y) — P_sensitized = 1?
	// g -> y via NOT: always propagates. So 1.
	if res.PSensitized != 1 {
		t.Errorf("PSensitized(g) = %v", res.PSensitized)
	}

	rep, err := Estimate(c, EstimateConfig{Method: MethodEPP})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFIT <= 0 {
		t.Errorf("TotalFIT = %v", rep.TotalFIT)
	}
	if len(rep.TopK(2)) != 2 {
		t.Error("TopK failed")
	}

	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NAND(a, b)") {
		t.Errorf("serialized netlist missing gate:\n%s", buf.String())
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder("fac")
	x := b.Input("x")
	y := b.Not("y", x)
	b.MarkOutput(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 2 {
		t.Errorf("N = %d", c.N())
	}
}

func TestFacadeGenerateProfile(t *testing.T) {
	c, err := GenerateProfile("s953")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Gates != 395 {
		t.Errorf("s953 gates = %d", c.Stats().Gates)
	}
	if _, err := GenerateProfile("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestFacadeExactAndMultiCycle covers the exact-analysis and sequential
// wrappers on the majority-voter testdata circuit.
func TestFacadeExactAndMultiCycle(t *testing.T) {
	c, err := ParseBenchFile("testdata/majority.bench")
	if err != nil {
		t.Fatal(err)
	}
	a := c.ByName("a")

	enum, err := EnumeratePSensitized(c, a)
	if err != nil {
		t.Fatal(err)
	}
	bddVal, err := ExactPSensitized(c, a, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(enum-bddVal) > 1e-12 {
		t.Errorf("enumeration %v != BDD %v", enum, bddVal)
	}
	if enum != 0.5 {
		t.Errorf("majority voter P_sens(a) = %v, want 0.5", enum)
	}

	spExact, err := ExactSignalProbabilities(c, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spExact[c.ByName("maj")] != 0.5 {
		t.Errorf("exact SP(maj) = %v", spExact[c.ByName("maj")])
	}

	mca, err := NewMultiCycleAnalyzer(c, spExact)
	if err != nil {
		t.Fatal(err)
	}
	// maj is the PO. The analytical PDetect uses EPP, which on this
	// reconvergent voter overestimates (a feeds both the ab and ac product
	// terms): expect it near, not equal to, the exact 0.5.
	if got := mca.PDetect(a, 1); math.Abs(got-0.5) > 0.1 {
		t.Errorf("PDetect(a, 1) = %v, want ≈0.5", got)
	}
	sim := NewSequentialMC(c, SeqOptions{Frames: 1, Trials: 1 << 14, Seed: 4})
	r := sim.PDetect(a)
	if math.Abs(r.PDetect-0.5) > 5*r.StdErr+1e-9 {
		t.Errorf("sequential MC PDetect = %v ± %v, want 0.5", r.PDetect, r.StdErr)
	}
}

func TestFacadeMonteCarloAgreesWithEPP(t *testing.T) {
	c, err := GenerateProfile("s953")
	if err != nil {
		t.Fatal(err)
	}
	sp := SignalProbabilitiesMC(c, SPConfig{Vectors: 1 << 14, Seed: 2})
	an, err := NewAnalyzer(c, sp, AnalyzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(c, MCOptions{Vectors: 1 << 13, Seed: 5})
	// Spot-check a handful of sites.
	sumAbs, n := 0.0, 0
	for id := ID(0); int(id) < c.N(); id += 37 {
		sumAbs += math.Abs(an.EPP(id).PSensitized - mc.EPP(id).PSensitized)
		n++
	}
	if mean := sumAbs / float64(n); mean > 0.1 {
		t.Errorf("facade EPP vs MC mean |diff| = %v over %d sites", mean, n)
	}
}
