package sersim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/sigprob"
	"repro/internal/simulate"
	"repro/internal/verilog"
)

// TestCrossFormatRoundTrip: a generated circuit survives
// bench -> verilog -> bench with identical structure and identical EPP
// results.
func TestCrossFormatRoundTrip(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "xfmt", Seed: 8, PIs: 8, POs: 4, FFs: 4, Gates: 150})

	var vbuf bytes.Buffer
	if err := verilog.Write(&vbuf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := verilog.Parse(&vbuf)
	if err != nil {
		t.Fatal(err)
	}
	var bbuf bytes.Buffer
	if err := bench.Write(&bbuf, c2); err != nil {
		t.Fatal(err)
	}
	c3, err := bench.Parse(&bbuf)
	if err != nil {
		t.Fatal(err)
	}
	if c3.N() != c.N() {
		t.Fatalf("node count drifted: %d -> %d", c.N(), c3.N())
	}

	// EPP results must be identical (by node name) across the round trip.
	spA := sigprob.Topological(c, sigprob.Config{})
	spB := sigprob.Topological(c3, sigprob.Config{})
	anA := core.MustNew(c, spA, core.Options{})
	anB := core.MustNew(c3, spB, core.Options{})
	for i := range c.Nodes {
		name := c.Nodes[i].Name
		idB := c3.ByName(name)
		if idB == netlist.InvalidID {
			t.Fatalf("node %q lost in round trip", name)
		}
		a := anA.EPP(c.Nodes[i].ID).PSensitized
		b := anB.EPP(idB).PSensitized
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("node %q: EPP %v before, %v after round trip", name, a, b)
		}
	}
}

// TestExtractionPreservesEPP: extracting the fanin cone of an output and
// re-running the analysis in isolation gives the same P_sensitized for every
// node of the cone whose full-circuit cone stays inside the extraction.
// For the output's own fanin nodes whose fanout escapes the cone this need
// not hold; the output node itself always qualifies.
func TestExtractionPreservesEPP(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "exepp", Seed: 15, PIs: 8, POs: 3, Gates: 120})
	po := c.POs[0]
	sub, err := netlist.ExtractCone(c, []netlist.ID{po})
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive cross-check when the extraction is small enough: the
	// extracted cone's exact signal probability of the root must match the
	// full circuit's (the cone contains the root's entire fanin).
	if len(sub.Sources()) <= exact.MaxSupport && len(c.Sources()) <= exact.MaxSupport {
		full, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		part, err := exact.SignalProb(sub)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(full[po]-part[sub.ByName(c.NameOf(po))]) > 1e-12 {
			t.Fatalf("extraction changed the root's exact SP: %v vs %v",
				full[po], part[sub.ByName(c.NameOf(po))])
		}
	}
}

// TestSERPipelineOnParsedCircuit: .bench in, SER report out, with both
// estimators, end to end through the facade.
func TestSERPipelineOnParsedCircuit(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "pipe", Seed: 23, PIs: 10, POs: 4, FFs: 6, Gates: 200})
	var buf bytes.Buffer
	if err := bench.Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	repE, err := Estimate(parsed, EstimateConfig{Method: MethodEPP, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	repM, err := Estimate(parsed, EstimateConfig{
		Method: MethodMonteCarlo,
		MC:     MCOptions{Vectors: 4096, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(repE.TotalFIT-repM.TotalFIT) / repM.TotalFIT
	t.Logf("pipeline totals: EPP %.4g, MC %.4g (rel %.3f)", repE.TotalFIT, repM.TotalFIT, rel)
	if rel > 0.15 {
		t.Errorf("estimators disagree by %.1f%%", 100*rel)
	}
}

// TestNaiveAndBitParallelBaselinesAgree: the two random-simulation
// implementations estimate the same quantity.
func TestNaiveAndBitParallelBaselinesAgree(t *testing.T) {
	c := gen.MustRandom(gen.Params{Name: "base", Seed: 31, PIs: 8, POs: 3, FFs: 2, Gates: 80})
	naive := simulate.NewNaive(c, simulate.MCOptions{Vectors: 8192, Seed: 3})
	bitp := simulate.NewMonteCarlo(c, simulate.MCOptions{Vectors: 8192, Seed: 4})
	for id := 0; id < c.N(); id += 9 {
		a := naive.EPP(netlist.ID(id))
		b := bitp.EPP(netlist.ID(id))
		tol := 5*(a.StdErr+b.StdErr) + 1e-9
		if math.Abs(a.PSensitized-b.PSensitized) > tol {
			t.Errorf("site %d: naive %v, bit-parallel %v (tol %v)",
				id, a.PSensitized, b.PSensitized, tol)
		}
	}
}
