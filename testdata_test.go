package sersim

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/netlist"
	"repro/internal/sigprob"
	"repro/internal/verilog"
)

// TestMajorityVoterBothFormats parses the same majority voter from .bench
// and .v files and checks that both yield identical, analytically known
// propagation probabilities.
func TestMajorityVoterBothFormats(t *testing.T) {
	cb, err := bench.ParseFile("testdata/majority.bench")
	if err != nil {
		t.Fatal(err)
	}
	cv, err := verilog.ParseFile("testdata/majority.v")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*netlist.Circuit{cb, cv} {
		if len(c.PIs) != 3 || len(c.POs) != 1 || len(c.FFs) != 1 {
			t.Fatalf("%s interface: %d/%d/%d", c.Name, len(c.PIs), len(c.POs), len(c.FFs))
		}
		// Majority of three uniform inputs: SP = 1/2 by symmetry.
		spTruth, err := exact.SignalProb(c)
		if err != nil {
			t.Fatal(err)
		}
		maj := c.ByName("maj")
		if spTruth[maj] != 0.5 {
			t.Errorf("%s: exact SP(maj) = %v, want 0.5", c.Name, spTruth[maj])
		}

		// A flip at input a changes the majority iff b != c: probability 1/2.
		truth, err := exact.PSensitized(c, c.ByName("a"))
		if err != nil {
			t.Fatal(err)
		}
		if truth != 0.5 {
			t.Errorf("%s: exact P_sens(a) = %v, want 0.5", c.Name, truth)
		}

		// EPP with exact signal probabilities: the a->ab and a->ac branches
		// reconverge at the OR with equal polarity, a case the polarity
		// algebra handles; the residual error is the independence
		// assumption between ab and ac (both contain b resp. c).
		an := core.MustNew(c, spTruth, core.Options{})
		got := an.EPP(c.ByName("a")).PSensitized
		if math.Abs(got-truth) > 0.2 {
			t.Errorf("%s: EPP P_sens(a) = %v, exact %v", c.Name, got, truth)
		}

		// The voter output itself is fully observed.
		if p := an.EPP(maj).PSensitized; p != 1 {
			t.Errorf("%s: P_sens(maj) = %v", c.Name, p)
		}
	}

	// Cross-format agreement node by node.
	spb := sigprob.Topological(cb, sigprob.Config{})
	spv := sigprob.Topological(cv, sigprob.Config{})
	anb := core.MustNew(cb, spb, core.Options{})
	anv := core.MustNew(cv, spv, core.Options{})
	for i := range cb.Nodes {
		name := cb.Nodes[i].Name
		idv := cv.ByName(name)
		if idv == netlist.InvalidID {
			t.Fatalf("node %q missing from the Verilog version", name)
		}
		a := anb.EPP(cb.Nodes[i].ID).PSensitized
		b := anv.EPP(idv).PSensitized
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("node %q: bench %v, verilog %v", name, a, b)
		}
	}
}
