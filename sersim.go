// Package sersim is the public API of the soft-error-rate estimation
// library, a from-scratch reproduction of Asadi & Tahoori, "An Accurate SER
// Estimation Method Based on Propagation Probability" (DATE 2005).
//
// The library decomposes the soft error rate of every circuit node n as
//
//	SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n)
//
// and computes the expensive P_sensitized term analytically with the paper's
// error propagation probability (EPP) method: a single topological sweep per
// error site over four-valued probability states (Pa, Pā, P0, P1) that track
// the propagated error's polarity, which keeps the estimate accurate at
// reconvergent fanout.
//
// # Quickstart
//
// The whole pipeline is one call: Run parses nothing and hides nothing — it
// takes a circuit, functional options, and a context, and returns the
// per-node report.
//
//	c, err := sersim.ParseBenchFile("s1196.bench")
//	rep, err := sersim.Run(ctx, c)                         // paper defaults
//	rep, err := sersim.Run(ctx, c,
//	        sersim.WithSPMethod(sersim.SPMonteCarlo),      // simulation-grade SP
//	        sersim.WithSeed(7),
//	        sersim.WithWorkers(8))
//	for _, n := range rep.TopK(10) { ... }                 // vulnerability ranking
//
// RunStream is the incremental form: it yields one NodeSER at a time in ID
// order, honoring cancellation between batches, so huge sweeps need not
// materialize a full report:
//
//	for n, err := range sersim.RunStream(ctx, c) {
//	        if err != nil { return err }
//	        consume(n)
//	}
//
// The P_sensitized backend is pluggable: WithMethod picks the estimator
// family (EPP vs Monte Carlo), WithEngine names a specific registered
// backend ("epp-batch", "epp-scalar", "monte-carlo", "enum", "bdd" — see
// Engines), and WithFrames extends the analysis across clock cycles.
// Contradictory option combinations are rejected up front with descriptive
// errors.
//
// # Multi-cycle support by engine
//
// WithFrames(n) for n > 1 replaces the single-cycle P_sensitized (where a
// flip-flop capture counts as a detection) with the multi-cycle detection
// probability: the error is followed through flip-flops for up to n clock
// cycles and only primary-output differences count.
//
//	epp-batch    ✓  analytic frame composition (internal/seq), batched sweeps
//	epp-scalar   ✓  analytic frame composition, one scalar sweep per site
//	monte-carlo  ✓  frame-unrolled batched fault injection (one shared good
//	                simulation per 64-vector word per frame)
//	enum         ✗  rejected (cannot follow errors through flip-flops)
//	bdd          ✗  rejected (cannot follow errors through flip-flops)
//
// The two analytic engines agree to float tolerance; the monte-carlo engine
// agrees with them statistically and with the ground-truth two-machine
// simulator (SequentialMC) bit-exactly under its shared-vector regime.
//
// Combining WithFrames with WithLatchModel runs the latch-window-weighted
// multi-cycle mode on the same three engines: the strike cycle's detection
// contribution — a narrow transient racing the capturing register's window —
// is derated by the model's frame-0 capture weight, while detections in
// later frames are full-cycle flip-flop values and count in full (see
// LatchModel and the examples/latchwindow program).
//
// # Running as a service
//
// cmd/serd wraps Run and RunStream in a long-running HTTP daemon: circuits
// are parsed and finalized once and cached by Circuit.ContentHash, completed
// reports are memoized by request fingerprint, streaming analyses arrive as
// NDJSON per-node tiles, and a coordinator mode shards the site range over
// worker daemons and folds the tiles bit-identically to a local Run (see the
// internal/serd package doc for the determinism argument and the README's
// "Running as a service" section for the protocol).
//
// # Migration from the pre-Run API
//
// The original entry points remain as thin wrappers and low-level access
// paths: Estimate(c, EstimateConfig{...}) is Run with a background context
// and struct-style config (deprecated); NewAnalyzer serves single-site EPP
// queries; NewMonteCarlo, NewMultiCycleAnalyzer and the Exact* functions
// expose the individual backends directly. Every capability of those entry
// points is reachable through Run/RunStream options:
//
//	Estimate(c, EstimateConfig{Method: MethodMonteCarlo}) → Run(ctx, c, WithMethod(MethodMonteCarlo))
//	Estimate(c, EstimateConfig{Frames: 8})                → Run(ctx, c, WithFrames(8))
//	NewMonteCarlo(c, MCOptions{Vectors: 4096})            → Run(ctx, c, WithMethod(MethodMonteCarlo), WithVectors(4096))
//	ExactPSensitized / EnumeratePSensitized (per node)    → Run(ctx, c, WithEngine("bdd" /* or "enum" */))
//
// The implementation lives in the internal packages (netlist, bench, graph,
// sigprob, core, engine, simulate, exact, faults, latch, ser, gen); this
// package re-exports the stable surface as type aliases so downstream code
// needs a single import.
package sersim

import (
	"context"
	"io"

	"repro/internal/bddsp"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eco"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/harden"
	"repro/internal/latch"
	"repro/internal/netlist"
	"repro/internal/seq"
	"repro/internal/ser"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// Circuit is an immutable gate-level netlist. See Builder and the parsing
// helpers for construction.
type Circuit = netlist.Circuit

// ID is a dense node identifier within a Circuit.
type ID = netlist.ID

// Builder assembles a Circuit programmatically.
type Builder = netlist.Builder

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder { return netlist.NewBuilder(name) }

// ParseBench parses an ISCAS'89 .bench netlist from r.
func ParseBench(r io.Reader) (*Circuit, error) { return bench.Parse(r) }

// ParseBenchFile parses the .bench file at path.
func ParseBenchFile(path string) (*Circuit, error) { return bench.ParseFile(path) }

// ParseBenchString parses .bench source held in a string.
func ParseBenchString(src string) (*Circuit, error) { return bench.ParseString(src) }

// WriteBench serializes the circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// GenerateProfile generates the deterministic synthetic stand-in for a named
// ISCAS'89 circuit (s953 … s38417); see DESIGN.md for the substitution
// rationale.
func GenerateProfile(name string) (*Circuit, error) { return gen.ByName(name) }

// SPConfig configures signal probability computation.
type SPConfig = sigprob.Config

// SignalProbabilities computes per-node signal probabilities with one
// Parker–McCluskey topological sweep (fast, independence-assuming).
func SignalProbabilities(c *Circuit, cfg SPConfig) []float64 {
	return sigprob.Topological(c, cfg)
}

// SignalProbabilitiesMC estimates per-node signal probabilities by
// bit-parallel random simulation (slow, asymptotically exact).
func SignalProbabilitiesMC(c *Circuit, cfg SPConfig) []float64 {
	return sigprob.MonteCarlo(c, cfg)
}

// Analyzer computes error propagation probabilities (the paper's core
// algorithm).
type Analyzer = core.Analyzer

// AnalyzerOptions configure an Analyzer.
type AnalyzerOptions = core.Options

// RuleSet selects the gate-rule implementation used by the EPP sweep (see
// AnalyzerOptions.Rules).
type RuleSet = core.RuleSet

// RuleSet values.
const (
	// RulesClosedForm is the paper's Table 1 product formulas (default).
	RulesClosedForm = core.RulesClosedForm
	// RulesPairwise folds every gate through the exhaustive 4×4 symbol
	// table — equivalent results, an executable specification.
	RulesPairwise = core.RulesPairwise
	// RulesNoPolarity ablates the paper's key idea (polarity tracking).
	RulesNoPolarity = core.RulesNoPolarity
)

// EPPResult is the per-site analysis result.
type EPPResult = core.Result

// NewAnalyzer returns an EPP analyzer over circuit c using the given
// per-node signal probabilities for off-path inputs.
func NewAnalyzer(c *Circuit, sp []float64, opt AnalyzerOptions) (*Analyzer, error) {
	return core.New(c, sp, opt)
}

// MonteCarlo is the random-vector fault-injection baseline estimator.
type MonteCarlo = simulate.MonteCarlo

// MCOptions configure the Monte Carlo estimators.
type MCOptions = simulate.MCOptions

// NewMonteCarlo returns the bit-parallel Monte Carlo baseline for c.
func NewMonteCarlo(c *Circuit, opt MCOptions) *MonteCarlo {
	return simulate.NewMonteCarlo(c, opt)
}

// EstimateConfig configures a full-circuit SER estimation.
//
// Deprecated: EstimateConfig is the struct-style configuration of the
// original Estimate entry point. New code should pass Options to Run or
// RunStream instead.
type EstimateConfig = ser.Config

// Report is a full-circuit SER estimation result with ranking and hardening
// evaluation helpers.
type Report = ser.Report

// NodeSER is one node's SER decomposition within a Report.
type NodeSER = ser.NodeSER

// Estimate runs the full SER analysis SER(n) = R_SEU × P_latched ×
// P_sensitized over every node of c.
//
// Deprecated: Estimate is Run with a background context and struct-style
// config; it remains for compatibility. New code should call Run (for
// cancellation, engine selection and progress) or RunStream (for
// incremental results).
func Estimate(c *Circuit, cfg EstimateConfig) (*Report, error) {
	return ser.Estimate(c, cfg)
}

// Method selects the P_sensitized estimator family.
type Method = ser.Method

// Method values.
const (
	// MethodEPP is the paper's propagation-probability analysis (default).
	MethodEPP = ser.MethodEPP
	// MethodMonteCarlo is the random-simulation baseline.
	MethodMonteCarlo = ser.MethodMonteCarlo
)

// SPMethod selects the signal probability source feeding the EPP engines.
type SPMethod = ser.SPMethod

// SPMethod values.
const (
	// SPTopological is the fast Parker–McCluskey sweep (default).
	SPTopological = ser.SPTopological
	// SPMonteCarlo is simulation-based signal probability, the accurate
	// design-flow by-product the paper leverages.
	SPMonteCarlo = ser.SPMonteCarlo
)

// ParseMethod maps a canonical method name ("epp", "monte-carlo") back to
// its Method; it inverts Method.String, so flag parsing, JSON output and
// reports share one vocabulary.
func ParseMethod(s string) (Method, error) { return ser.ParseMethod(s) }

// ParseSPMethod maps a canonical signal probability method name
// ("topological", "monte-carlo") back to its SPMethod, inverting
// SPMethod.String.
func ParseSPMethod(s string) (SPMethod, error) { return ser.ParseSPMethod(s) }

// ParseRuleSet maps a canonical rule-set name ("closed-form", "pairwise",
// "no-polarity") back to its RuleSet, inverting RuleSet.String — the
// vocabulary of WithRules and the sercalc -rules flag.
func ParseRuleSet(s string) (RuleSet, error) { return ser.ParseRuleSet(s) }

// FaultModel computes per-node raw SEU rates R_SEU(n); see WithFaultModel.
type FaultModel = faults.Model

// DefaultFaultModel returns the documented default R_SEU model, a useful
// starting point for WithFaultModel customization.
func DefaultFaultModel() FaultModel { return faults.Default() }

// LatchModel computes per-node latching probabilities P_latched(n); see
// WithLatchModel.
type LatchModel = latch.Model

// DefaultLatchModel returns the documented default P_latched model.
func DefaultLatchModel() LatchModel { return latch.Default() }

// ExactSignalProbabilities computes symbolically exact (BDD-based,
// Parker–McCluskey) signal probabilities, with per-source bias prob1 (nil =
// uniform) and a BDD node budget (0 = default). Exact but exponential in the
// worst case; the budget turns blow-ups into errors.
func ExactSignalProbabilities(c *Circuit, prob1 []float64, maxNodes int) ([]float64, error) {
	return bddsp.SignalProb(c, prob1, maxNodes)
}

// ExactPSensitized computes the symbolically exact propagation probability
// of an SEU at site via a BDD miter — the ground truth the EPP method
// approximates. For circuits with at most 24 sources the enumeration engine
// (EnumeratePSensitized) is usually faster.
func ExactPSensitized(c *Circuit, site ID, prob1 []float64, maxNodes int) (float64, error) {
	return bddsp.PSensitized(c, site, prob1, maxNodes)
}

// EnumeratePSensitized computes the exact propagation probability by
// exhaustive input enumeration (uniform sources, at most 24 of them).
func EnumeratePSensitized(c *Circuit, site ID) (float64, error) {
	return exact.PSensitized(c, site)
}

// PartialError reports a sweep that stopped before completion for an
// orderly reason — cancellation, a WithTimeout deadline, or the
// WithMaxSweepNodes budget — with how many node units had finalized. The
// cause (context.Canceled, context.DeadlineExceeded or ErrSweepBudget) is
// reachable through errors.Is/As. With WithCheckpoint the finalized work is
// durable and a re-run resumes from it.
type PartialError = engine.PartialError

// SweepPanicError is a panic recovered inside a sweep — an engine worker or
// a user callback (WithProgress, RunStream consumers) — converted to a
// returned error carrying the failing engine, unit and stack, so a buggy
// callback or one poisoned input cannot crash the process mid-sweep.
type SweepPanicError = engine.SweepPanicError

// ErrSweepBudget is the sentinel wrapped by a *PartialError when a sweep
// stops at its WithMaxSweepNodes budget; test with errors.Is.
var ErrSweepBudget = engine.ErrBudget

// TMR returns a copy of c with the selected gates triplicated behind 2-of-3
// majority voters (local triple modular redundancy), the hardening transform
// the paper's vulnerability ranking is meant to drive. See internal/harden
// for the soft-voter caveat.
func TMR(c *Circuit, selected []ID) (*Circuit, error) {
	return harden.TMR(c, selected)
}

// TMROverhead reports the gate-count cost of a TMR transform protecting k
// gates: 2 replicas + 4 voter gates each.
func TMROverhead(k int) int { return harden.Overhead(k) }

// ECOCache memoizes per-site P_sensitized results across netlist edits,
// keyed by a content hash of each site's observation cone: re-running an
// edited circuit recomputes only the sites whose cones the edit touched and
// restores the rest bit-identically, so the rank → harden → re-estimate
// loop costs O(touched cones) instead of O(full sweep) per iteration.
// Attach one with WithECO (in-process sharing across runs) or WithECOCache
// (directory-backed persistence); see internal/eco for the invalidation
// soundness argument and OptimizeHardening for the packaged loop.
type ECOCache = eco.Cache

// NewECOCache returns an in-memory ECO cache, shared across Run calls
// within the process.
func NewECOCache() *ECOCache { return eco.NewCache() }

// OpenECOCache returns a directory-backed ECO cache: cached results persist
// across processes in <dir>/<request-key>.eco files (atomic writes;
// corrupted files degrade to cache misses, never to stale results).
func OpenECOCache(dir string) (*ECOCache, error) { return eco.Open(dir) }

// ECOChangedSites returns, ascending, every node ID of edited whose
// P_sensitized value may differ from the same ID in base under a
// frames-frame analysis — the netlist differ behind the ECO cache's
// observability counters. IDs not returned are guaranteed unchanged.
func ECOChangedSites(base, edited *Circuit, frames int) []ID {
	return eco.ChangedSites(base, edited, frames)
}

// OptimizeHardening runs the greedy selective-hardening loop: starting from
// a full estimate, repeatedly TMR the highest-SER unprotected gate and
// re-estimate — incrementally, through a shared ECOCache, so each iteration
// sweeps only the cones the TMR touched — until the FIT objective meets the
// budget. See HardenOptimizeConfig for the knobs and HardenResult for the
// per-step audit trail (including swept-site counters).
func OptimizeHardening(ctx context.Context, c *Circuit, cfg HardenOptimizeConfig) (*HardenResult, error) {
	return harden.Optimize(ctx, c, cfg)
}

// HardenOptimizeConfig configures OptimizeHardening.
type HardenOptimizeConfig = harden.OptimizeConfig

// HardenResult is OptimizeHardening's outcome: the hardened circuit, the
// final report, and one HardenStep of audit trail per protected gate.
type HardenResult = harden.Result

// HardenStep records one optimizer iteration: the picked gate, the FIT
// objective before/after, and the engine work counters proving the
// re-estimate was incremental.
type HardenStep = harden.Step

// MultiCycleAnalyzer extends the single-cycle analysis across clock cycles:
// errors captured by flip-flops keep propagating in subsequent frames (the
// sequential extension; see internal/seq).
type MultiCycleAnalyzer = seq.Analyzer

// NewMultiCycleAnalyzer returns a multi-cycle analyzer for c.
func NewMultiCycleAnalyzer(c *Circuit, sp []float64) (*MultiCycleAnalyzer, error) {
	return seq.New(c, sp)
}

// SequentialMC is the two-machine multi-cycle fault-injection simulator used
// to validate the multi-cycle analysis.
type SequentialMC = simulate.Sequential

// SeqOptions configure SequentialMC.
type SeqOptions = simulate.SeqOptions

// NewSequentialMC returns a multi-cycle fault-injection simulator for c.
func NewSequentialMC(c *Circuit, opt SeqOptions) *SequentialMC {
	return simulate.NewSequential(c, opt)
}
