// Package sersim is the public API of the soft-error-rate estimation
// library, a from-scratch reproduction of Asadi & Tahoori, "An Accurate SER
// Estimation Method Based on Propagation Probability" (DATE 2005).
//
// The library decomposes the soft error rate of every circuit node n as
//
//	SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n)
//
// and computes the expensive P_sensitized term analytically with the paper's
// error propagation probability (EPP) method: a single topological sweep per
// error site over four-valued probability states (Pa, Pā, P0, P1) that track
// the propagated error's polarity, which keeps the estimate accurate at
// reconvergent fanout.
//
// Typical use:
//
//	c, err := sersim.ParseBenchFile("s1196.bench")
//	sp := sersim.SignalProbabilities(c, sersim.SPConfig{})
//	an, err := sersim.NewAnalyzer(c, sp, sersim.AnalyzerOptions{})
//	res := an.EPP(c.ByName("G42"))        // one error site
//	rep, err := sersim.Estimate(c, sersim.EstimateConfig{}) // whole circuit
//
// The implementation lives in the internal packages (netlist, bench, graph,
// sigprob, core, simulate, exact, faults, latch, ser, gen); this package
// re-exports the stable surface as type aliases so downstream code needs a
// single import.
package sersim

import (
	"io"

	"repro/internal/bddsp"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/harden"
	"repro/internal/netlist"
	"repro/internal/seq"
	"repro/internal/ser"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

// Circuit is an immutable gate-level netlist. See Builder and the parsing
// helpers for construction.
type Circuit = netlist.Circuit

// ID is a dense node identifier within a Circuit.
type ID = netlist.ID

// Builder assembles a Circuit programmatically.
type Builder = netlist.Builder

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder { return netlist.NewBuilder(name) }

// ParseBench parses an ISCAS'89 .bench netlist from r.
func ParseBench(r io.Reader) (*Circuit, error) { return bench.Parse(r) }

// ParseBenchFile parses the .bench file at path.
func ParseBenchFile(path string) (*Circuit, error) { return bench.ParseFile(path) }

// ParseBenchString parses .bench source held in a string.
func ParseBenchString(src string) (*Circuit, error) { return bench.ParseString(src) }

// WriteBench serializes the circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// GenerateProfile generates the deterministic synthetic stand-in for a named
// ISCAS'89 circuit (s953 … s38417); see DESIGN.md for the substitution
// rationale.
func GenerateProfile(name string) (*Circuit, error) { return gen.ByName(name) }

// SPConfig configures signal probability computation.
type SPConfig = sigprob.Config

// SignalProbabilities computes per-node signal probabilities with one
// Parker–McCluskey topological sweep (fast, independence-assuming).
func SignalProbabilities(c *Circuit, cfg SPConfig) []float64 {
	return sigprob.Topological(c, cfg)
}

// SignalProbabilitiesMC estimates per-node signal probabilities by
// bit-parallel random simulation (slow, asymptotically exact).
func SignalProbabilitiesMC(c *Circuit, cfg SPConfig) []float64 {
	return sigprob.MonteCarlo(c, cfg)
}

// Analyzer computes error propagation probabilities (the paper's core
// algorithm).
type Analyzer = core.Analyzer

// AnalyzerOptions configure an Analyzer.
type AnalyzerOptions = core.Options

// EPPResult is the per-site analysis result.
type EPPResult = core.Result

// NewAnalyzer returns an EPP analyzer over circuit c using the given
// per-node signal probabilities for off-path inputs.
func NewAnalyzer(c *Circuit, sp []float64, opt AnalyzerOptions) (*Analyzer, error) {
	return core.New(c, sp, opt)
}

// MonteCarlo is the random-vector fault-injection baseline estimator.
type MonteCarlo = simulate.MonteCarlo

// MCOptions configure the Monte Carlo estimators.
type MCOptions = simulate.MCOptions

// NewMonteCarlo returns the bit-parallel Monte Carlo baseline for c.
func NewMonteCarlo(c *Circuit, opt MCOptions) *MonteCarlo {
	return simulate.NewMonteCarlo(c, opt)
}

// EstimateConfig configures a full-circuit SER estimation.
type EstimateConfig = ser.Config

// Report is a full-circuit SER estimation result with ranking and hardening
// evaluation helpers.
type Report = ser.Report

// NodeSER is one node's SER decomposition within a Report.
type NodeSER = ser.NodeSER

// Estimate runs the full SER analysis SER(n) = R_SEU × P_latched ×
// P_sensitized over every node of c.
func Estimate(c *Circuit, cfg EstimateConfig) (*Report, error) {
	return ser.Estimate(c, cfg)
}

// Method selects the P_sensitized estimator in EstimateConfig.
const (
	MethodEPP        = ser.MethodEPP
	MethodMonteCarlo = ser.MethodMonteCarlo
)

// ExactSignalProbabilities computes symbolically exact (BDD-based,
// Parker–McCluskey) signal probabilities, with per-source bias prob1 (nil =
// uniform) and a BDD node budget (0 = default). Exact but exponential in the
// worst case; the budget turns blow-ups into errors.
func ExactSignalProbabilities(c *Circuit, prob1 []float64, maxNodes int) ([]float64, error) {
	return bddsp.SignalProb(c, prob1, maxNodes)
}

// ExactPSensitized computes the symbolically exact propagation probability
// of an SEU at site via a BDD miter — the ground truth the EPP method
// approximates. For circuits with at most 24 sources the enumeration engine
// (EnumeratePSensitized) is usually faster.
func ExactPSensitized(c *Circuit, site ID, prob1 []float64, maxNodes int) (float64, error) {
	return bddsp.PSensitized(c, site, prob1, maxNodes)
}

// EnumeratePSensitized computes the exact propagation probability by
// exhaustive input enumeration (uniform sources, at most 24 of them).
func EnumeratePSensitized(c *Circuit, site ID) (float64, error) {
	return exact.PSensitized(c, site)
}

// TMR returns a copy of c with the selected gates triplicated behind 2-of-3
// majority voters (local triple modular redundancy), the hardening transform
// the paper's vulnerability ranking is meant to drive. See internal/harden
// for the soft-voter caveat.
func TMR(c *Circuit, selected []ID) (*Circuit, error) {
	return harden.TMR(c, selected)
}

// MultiCycleAnalyzer extends the single-cycle analysis across clock cycles:
// errors captured by flip-flops keep propagating in subsequent frames (the
// sequential extension; see internal/seq).
type MultiCycleAnalyzer = seq.Analyzer

// NewMultiCycleAnalyzer returns a multi-cycle analyzer for c.
func NewMultiCycleAnalyzer(c *Circuit, sp []float64) (*MultiCycleAnalyzer, error) {
	return seq.New(c, sp)
}

// SequentialMC is the two-machine multi-cycle fault-injection simulator used
// to validate the multi-cycle analysis.
type SequentialMC = simulate.Sequential

// SeqOptions configure SequentialMC.
type SeqOptions = simulate.SeqOptions

// NewSequentialMC returns a multi-cycle fault-injection simulator for c.
func NewSequentialMC(c *Circuit, opt SeqOptions) *SequentialMC {
	return simulate.NewSequential(c, opt)
}
