// Three-input majority voter with a registered copy of the vote.
// Structurally identical to testdata/majority.bench, node for node.
module majority (a, b, c, maj);
  input a, b, c;
  output maj;
  wire ab, ac, bc, q;

  and g1 (ab, a, b);
  and g2 (ac, a, c);
  and g3 (bc, b, c);
  or  g4 (maj, ab, ac, bc);
  dff r1 (q, maj);
endmodule
