// Command sercalc estimates the soft error rate of a gate-level circuit:
// it parses an ISCAS'89 .bench netlist (or generates a named synthetic
// ISCAS'89-profile circuit), runs the EPP-based SER analysis
// SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n) over every node, and
// prints the most vulnerable nodes together with the circuit total — the
// paper's stated use-case for driving selective hardening.
//
// Usage:
//
//	sercalc -bench path/to/circuit.bench [flags]
//	sercalc -verilog path/to/netlist.v [flags]
//	sercalc -profile s1196 [flags]
//
//	-top 20           how many nodes to print (0 = all)
//	-method epp       psensitized estimator: epp | monte-carlo
//	-sp topological   signal probability source: topological | monte-carlo
//	-vectors 10000    vectors for the monte-carlo estimators
//	-seed 1           seed for randomized components
//	-frames 1         clock cycles for multi-cycle P_sensitized (EPP only)
//	-harden 0         evaluate protecting the top-k nodes (0 = skip)
//	-residual 0.1     remaining SEU fraction on hardened nodes
//	-csv out.csv      write the full per-node table as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/ser"
	"repro/internal/sigprob"
	"repro/internal/simulate"
	"repro/internal/verilog"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "path to a .bench netlist")
		vlogPath  = flag.String("verilog", "", "path to a structural Verilog netlist")
		profile   = flag.String("profile", "", "generate a synthetic ISCAS'89 profile (e.g. s1196)")
		top       = flag.Int("top", 20, "how many nodes to print (0 = all)")
		method    = flag.String("method", "epp", "epp | monte-carlo")
		spMethod  = flag.String("sp", "topological", "topological | monte-carlo")
		vectors   = flag.Int("vectors", 10000, "vectors for monte-carlo estimators")
		seed      = flag.Uint64("seed", 1, "seed")
		frames    = flag.Int("frames", 1, "clock cycles for multi-cycle P_sensitized (EPP only)")
		harden    = flag.Int("harden", 0, "evaluate protecting the top-k nodes")
		residual  = flag.Float64("residual", 0.1, "remaining SEU fraction on hardened nodes")
		csvPath   = flag.String("csv", "", "write the full per-node table as CSV")
	)
	flag.Parse()

	c, err := load(*benchPath, *vlogPath, *profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sercalc: %v\n", err)
		os.Exit(1)
	}

	cfg := ser.Config{
		SP:     sigprob.Config{Vectors: *vectors, Seed: *seed},
		MC:     simulate.MCOptions{Vectors: *vectors, Seed: *seed},
		Frames: *frames,
	}
	switch *method {
	case "epp":
		cfg.Method = ser.MethodEPP
	case "monte-carlo":
		cfg.Method = ser.MethodMonteCarlo
	default:
		fmt.Fprintf(os.Stderr, "sercalc: unknown method %q\n", *method)
		os.Exit(2)
	}
	switch *spMethod {
	case "topological":
		cfg.SPMethod = ser.SPTopological
	case "monte-carlo":
		cfg.SPMethod = ser.SPMonteCarlo
	default:
		fmt.Fprintf(os.Stderr, "sercalc: unknown sp method %q\n", *spMethod)
		os.Exit(2)
	}

	rep, err := ser.Estimate(c, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sercalc: %v\n", err)
		os.Exit(1)
	}

	s := c.Stats()
	fmt.Printf("%s\n", s)
	fmt.Printf("method: %v (SP: %v)\n", cfg.Method, cfg.SPMethod)
	fmt.Printf("total circuit SER: %.6g FIT\n\n", rep.TotalFIT)

	ranked := rep.Ranked()
	n := *top
	if n <= 0 || n > len(ranked) {
		n = len(ranked)
	}
	t := report.NewTable(
		fmt.Sprintf("top %d vulnerable nodes", n),
		"rank", "node", "kind", "R_SEU(FIT)", "P_latched", "P_sens", "SER(FIT)", "share%",
	)
	for i := 0; i < n; i++ {
		r := ranked[i]
		share := 0.0
		if rep.TotalFIT > 0 {
			share = 100 * r.SERFIT / rep.TotalFIT
		}
		t.AddRowf(i+1, r.Name, c.Node(r.ID).Kind.String(),
			r.RateFIT, r.PLatched, r.PSensitized, r.SERFIT, share)
	}
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sercalc: %v\n", err)
		os.Exit(1)
	}

	if *harden > 0 {
		h := rep.Harden(*harden, *residual)
		fmt.Printf("\nhardening the top %d nodes (residual %.0f%%): %.6g -> %.6g FIT (-%.1f%%)\n",
			*harden, 100**residual, h.BeforeFIT, h.AfterFIT, h.ReductionPct)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, c, rep); err != nil {
			fmt.Fprintf(os.Stderr, "sercalc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func load(benchPath, vlogPath, profile string) (*netlist.Circuit, error) {
	set := 0
	for _, s := range []string{benchPath, vlogPath, profile} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("use exactly one of -bench, -verilog or -profile")
	}
	switch {
	case benchPath != "":
		return bench.ParseFile(benchPath)
	case vlogPath != "":
		return verilog.ParseFile(vlogPath)
	case profile != "":
		return gen.ByName(profile)
	default:
		return nil, fmt.Errorf("one of -bench, -verilog or -profile is required")
	}
}

func writeCSV(path string, c *netlist.Circuit, rep *ser.Report) error {
	t := report.NewTable("", "node", "kind", "rate_fit", "p_latched", "p_sensitized", "ser_fit")
	for _, r := range rep.Ranked() {
		t.AddRowf(r.Name, c.Node(r.ID).Kind.String(), r.RateFIT, r.PLatched, r.PSensitized, r.SERFIT)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
