// Command sercalc estimates the soft error rate of a gate-level circuit:
// it parses an ISCAS'89 .bench netlist (or generates a named synthetic
// ISCAS'89-profile circuit), runs the SER analysis
// SER(n) = R_SEU(n) × P_latched(n) × P_sensitized(n) over every node, and
// prints the most vulnerable nodes together with the circuit total — the
// paper's stated use-case for driving selective hardening.
//
// Usage:
//
//	sercalc -bench path/to/circuit.bench [flags]
//	sercalc -verilog path/to/netlist.v [flags]
//	sercalc -profile s1196 [flags]
//
//	-top 20           how many nodes to print (0 = all)
//	-method epp       psensitized estimator: epp | monte-carlo
//	-engine ""        named backend override (see -engines; e.g. epp-scalar, bdd)
//	-engines          list the registered engines and exit
//	-sp topological   signal probability source: topological | monte-carlo
//	-vectors 10000    vectors for the monte-carlo estimators
//	-seed 1           seed for randomized components
//	-frames 1         clock cycles for multi-cycle detection (epp and monte-carlo engines)
//	-clock 1000       latch model clock period, ps
//	-pulse 150        latch model SEU transient width, ps
//	-window 30        latch model flip-flop setup+hold window, ps
//	-atten 0.95       latch model per-level electrical attenuation
//	-workers 0        parallelism for the P_sensitized sweep (0 = all cores)
//	-progress         report sweep progress on stderr
//	-harden 0         evaluate protecting the top-k nodes (0 = skip)
//	-residual 0.1     remaining SEU fraction on hardened nodes
//	-csv out.csv      write the full per-node table as CSV
//	-timeout 0        bound the whole run (e.g. 30s); expiry exits with code 3
//	-checkpoint ""    checkpoint file: commit sweep progress, resume completed work
//	-checkpoint-interval 10s  minimum time between checkpoint writes (0 = every batch)
//	-eco-cache ""     incremental re-estimation cache directory: a re-run after
//	                  a netlist edit re-sweeps only the changed cones
//
// Setting any of the latch flags (-clock, -pulse, -window, -atten) replaces
// the default latching-window model; combined with -frames N > 1 that also
// opts the run into the latch-window-weighted multi-cycle composition,
// where only full-cycle re-launched detections count in full and the
// strike-cycle transient is derated by its capture-window probability.
//
// The run is cancellable: an interrupt (Ctrl-C) stops the sweep between
// batches and exits cleanly.
//
// With -checkpoint the sweep is also crash-safe: completed batches are
// committed to the file (atomically) and an identical rerun against the same
// file skips them, producing the same result as an uninterrupted run. A
// -timeout that expires mid-sweep therefore composes with -checkpoint into
// incremental runs that converge to completion.
//
// Exit codes: 0 success, 2 usage error, 3 deadline exceeded (partial
// progress on stderr), 4 internal error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	sersim "repro"
	"repro/internal/circuitio"
	"repro/internal/report"
)

func main() {
	var (
		benchPath   = flag.String("bench", "", "path to a .bench netlist")
		vlogPath    = flag.String("verilog", "", "path to a structural Verilog netlist")
		profile     = flag.String("profile", "", "generate a synthetic ISCAS'89 profile (e.g. s1196)")
		top         = flag.Int("top", 20, "how many nodes to print (0 = all)")
		method      = flag.String("method", sersim.MethodEPP.String(), "epp | monte-carlo")
		engineName  = flag.String("engine", "", "named P_sensitized backend override (see -engines)")
		listEngines = flag.Bool("engines", false, "list the registered engines and exit")
		spMethod    = flag.String("sp", sersim.SPTopological.String(), "topological | monte-carlo")
		rules       = flag.String("rules", sersim.RulesClosedForm.String(), "EPP gate rules: closed-form | pairwise | no-polarity")
		vectors     = flag.Int("vectors", 10000, "vectors for monte-carlo estimators")
		seed        = flag.Uint64("seed", 1, "seed")
		frames      = flag.Int("frames", 1, "clock cycles for multi-cycle detection (epp and monte-carlo engines)")
		clock       = flag.Float64("clock", sersim.DefaultLatchModel().ClockPeriodPs, "latch model clock period in ps")
		pulse       = flag.Float64("pulse", sersim.DefaultLatchModel().PulseWidthPs, "latch model SEU transient width in ps")
		window      = flag.Float64("window", sersim.DefaultLatchModel().WindowPs, "latch model setup+hold window in ps")
		atten       = flag.Float64("atten", sersim.DefaultLatchModel().AttenuationPerLevel, "latch model per-level electrical attenuation")
		workers     = flag.Int("workers", 0, "parallelism for the P_sensitized sweep (0 = all cores)")
		progress    = flag.Bool("progress", false, "report sweep progress on stderr")
		harden      = flag.Int("harden", 0, "evaluate protecting the top-k nodes")
		residual    = flag.Float64("residual", 0.1, "remaining SEU fraction on hardened nodes")
		csvPath     = flag.String("csv", "", "write the full per-node table as CSV")
		timeout     = flag.Duration("timeout", 0, "bound the whole run; expiry exits with code 3 (0 = no deadline)")
		checkpoint  = flag.String("checkpoint", "", "checkpoint file: commit sweep progress, resume completed work")
		ecoCache    = flag.String("eco-cache", "", "directory-backed incremental re-estimation cache: re-runs after netlist edits re-sweep only changed cones")
		ckInterval  = flag.Duration("checkpoint-interval", 10*time.Second, "minimum time between checkpoint writes (0 = every batch)")
	)
	flag.Parse()

	if *listEngines {
		fmt.Println(strings.Join(sersim.Engines(), "\n"))
		return
	}

	c, err := load(*benchPath, *vlogPath, *profile)
	if err != nil {
		if errors.Is(err, errUsage) {
			fatalUsage(err)
		}
		fatal(err)
	}

	// One canonical naming end to end: the flag values are exactly the
	// String() forms the report prints back.
	m, err := sersim.ParseMethod(*method)
	if err != nil {
		fatalUsage(err)
	}
	spm, err := sersim.ParseSPMethod(*spMethod)
	if err != nil {
		fatalUsage(err)
	}
	rs, err := sersim.ParseRuleSet(*rules)
	if err != nil {
		fatalUsage(err)
	}

	opts := []sersim.Option{
		sersim.WithSPMethod(spm),
		sersim.WithVectors(*vectors),
		sersim.WithSPVectors(*vectors),
		sersim.WithSeed(*seed),
		sersim.WithFrames(*frames),
		sersim.WithWorkers(*workers),
	}
	if rs != sersim.RulesClosedForm {
		// Non-default rule sets require an EPP engine; the option layer
		// rejects contradictions (e.g. -rules pairwise -method monte-carlo)
		// with a descriptive error before any work starts.
		opts = append(opts, sersim.WithRules(rs))
	}
	// An explicit latch model is more than a parameter tweak: with -frames
	// it also opts into the latch-window-weighted multi-cycle composition,
	// so pass it only when the user actually touched a latch flag.
	if flagWasSet("clock") || flagWasSet("pulse") || flagWasSet("window") || flagWasSet("atten") {
		opts = append(opts, sersim.WithLatchModel(sersim.LatchModel{
			ClockPeriodPs:       *clock,
			PulseWidthPs:        *pulse,
			WindowPs:            *window,
			AttenuationPerLevel: *atten,
		}))
	}
	// WithMethod and WithEngine cross-check each other; pass the method only
	// when the user actually chose one so an -engine override alone never
	// conflicts with the method default.
	if *engineName != "" {
		opts = append(opts, sersim.WithEngine(*engineName))
	}
	if flagWasSet("method") {
		opts = append(opts, sersim.WithMethod(m))
	}
	if *timeout > 0 {
		opts = append(opts, sersim.WithTimeout(*timeout))
	}
	if *checkpoint != "" {
		opts = append(opts, sersim.WithCheckpoint(*checkpoint, *ckInterval))
	}
	if *ecoCache != "" {
		opts = append(opts, sersim.WithECOCache(*ecoCache))
	}
	if *progress {
		opts = append(opts, sersim.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rP_sensitized %d/%d nodes", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := sersim.Run(ctx, c, opts...)
	if err != nil {
		exitRunErr(err, *checkpoint)
	}

	s := c.Stats()
	fmt.Printf("%s\n", s)
	fmt.Printf("method: %v (engine: %s, SP: %v)\n", rep.Method, rep.Engine, spm)
	fmt.Printf("total circuit SER: %.6g FIT\n\n", rep.TotalFIT)

	ranked := rep.Ranked()
	n := *top
	if n <= 0 || n > len(ranked) {
		n = len(ranked)
	}
	t := report.NewTable(
		fmt.Sprintf("top %d vulnerable nodes", n),
		"rank", "node", "kind", "R_SEU(FIT)", "P_latched", "P_sens", "SER(FIT)", "share%",
	)
	for i := 0; i < n; i++ {
		r := ranked[i]
		share := 0.0
		if rep.TotalFIT > 0 {
			share = 100 * r.SERFIT / rep.TotalFIT
		}
		t.AddRowf(i+1, r.Name, c.Node(r.ID).Kind.String(),
			r.RateFIT, r.PLatched, r.PSensitized, r.SERFIT, share)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}

	if *harden > 0 {
		h := rep.Harden(*harden, *residual)
		fmt.Printf("\nhardening the top %d nodes (residual %.0f%%): %.6g -> %.6g FIT (-%.1f%%)\n",
			*harden, 100**residual, h.BeforeFIT, h.AfterFIT, h.ReductionPct)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, c, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sercalc: %v\n", err)
	os.Exit(4)
}

func fatalUsage(err error) {
	fmt.Fprintf(os.Stderr, "sercalc: %v\n", err)
	os.Exit(2)
}

// exitRunErr maps a failed run to the documented exit codes: an expired
// -timeout becomes a one-line partial-progress message and code 3 (a
// scheduling condition, not a failure of the analysis); everything else is
// an internal error, code 4.
func exitRunErr(err error, checkpoint string) {
	if errors.Is(err, context.DeadlineExceeded) {
		msg := "deadline exceeded"
		var perr *sersim.PartialError
		if errors.As(err, &perr) {
			msg = fmt.Sprintf("deadline exceeded after %d/%d node units", perr.Done, perr.Total)
		}
		if checkpoint != "" {
			msg += "; completed work is checkpointed — rerun the same command to resume"
		}
		fmt.Fprintf(os.Stderr, "sercalc: %s\n", msg)
		os.Exit(3)
	}
	fatal(err)
}

// flagWasSet reports whether the named flag was explicitly provided.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// errUsage marks load errors caused by the flag selection itself (no input,
// conflicting inputs) rather than by the named input's content — the former
// exit with the usage code. Its own message is empty so wrapping adds no
// prefix to the rendered error.
var errUsage = errors.New("")

func load(benchPath, vlogPath, profile string) (*sersim.Circuit, error) {
	set := 0
	for _, s := range []string{benchPath, vlogPath, profile} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("%wuse exactly one of -bench, -verilog or -profile", errUsage)
	}
	// All three inputs resolve through the shared circuitio parse path —
	// the same parse-once helper the serd daemon and serbench use — so
	// every consumer agrees on parsing, finalization and content hashing.
	switch {
	case benchPath != "":
		return circuitio.Load(circuitio.Source{Path: benchPath})
	case vlogPath != "":
		return circuitio.Load(circuitio.Source{Path: vlogPath})
	case profile != "":
		return circuitio.Load(circuitio.Source{Profile: profile})
	default:
		return nil, fmt.Errorf("%wone of -bench, -verilog or -profile is required", errUsage)
	}
}

func writeCSV(path string, c *sersim.Circuit, rep *sersim.Report) error {
	t := report.NewTable("", "node", "kind", "rate_fit", "p_latched", "p_sensitized", "ser_fit")
	for _, r := range rep.Ranked() {
		t.AddRowf(r.Name, c.Node(r.ID).Kind.String(), r.RateFIT, r.PLatched, r.PSensitized, r.SERFIT)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
