// Command serlint is the repo's determinism-contract multichecker: six
// analyzers (detrange, detsource, deferunlock, atomiconly, ctxflow,
// bitfloat) over the stdlib-only framework in internal/lint, usable
// standalone (`serlint ./...`), as a vettool
// (`go vet -vettool=$(which serlint) ./...`), and as the suppression
// auditor (`serlint -report lint-report.json ./...`). See the internal/lint
// package doc for the contract each analyzer encodes and the
// //serlint:allow directive format.
package main

import (
	"os"

	"repro/internal/lint/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:]))
}
