// Command serd runs the SER estimation service: a long-running HTTP daemon
// serving analyses (parse-once circuit cache, fingerprint-memoized reports,
// NDJSON tile streaming, admission control), optionally coordinating sharded
// sweeps over a worker fleet — or, in loadgen mode, a load generator
// measuring a running daemon's cached-request throughput and latency.
//
// Serve mode:
//
//	serd [-addr :8347] [flags]
//
//	-addr :8347            listen address
//	-pool 0                concurrent engine sweeps (0 = all cores)
//	-queue 0               admission queue depth past the pool (0 = 4× pool, -1 = none)
//	-circuit-cache-mb 256  parsed-circuit cache bound
//	-report-cache-mb 64    memoized-report cache bound
//	-workers ""            comma-separated worker base URLs (coordinator mode)
//	-shards-per-worker 2   shards the coordinator cuts per worker
//	-shard-attempts 0      dispatch attempts per shard (0 = 2 + workers)
//	-checkpoint-dir ""     durable shard-commit directory (coordinator mode)
//	-drain-timeout 15s     graceful-drain bound on SIGTERM/SIGINT
//
// Endpoints: POST /v1/analyze (JSON in; one JSON document out, or NDJSON
// tiles with "stream": true or Accept: application/x-ndjson), POST
// /v1/shard (the coordinator/worker protocol), GET /v1/stats, GET /healthz.
// On SIGTERM or SIGINT the daemon stops accepting connections and drains
// in-flight requests for up to -drain-timeout before exiting.
//
// Loadgen mode:
//
//	serd -mode loadgen -target http://host:8347 [flags]
//
//	-target URL          daemon to load (required)
//	-profile s38417      circuit profile every request analyzes
//	-frames 1            frames option of the generated request
//	-concurrency 8       closed-loop clients
//	-duration 10s        measured phase length
//	-out bench-serd.json result artifact path ("" = stdout only)
//
// The generator primes the daemon once (parsing and sweeping the circuit,
// populating both caches) and then measures the cached path — repeat sweeps
// are fingerprint cache hits — reporting requests/sec and p50/p90/p99
// latency, written as one JSON document to -out.
//
// Exit codes: 0 success, 2 usage error, 4 runtime error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serd"
)

func main() {
	var (
		mode = flag.String("mode", "serve", "serve | loadgen")

		addr            = flag.String("addr", ":8347", "listen address (serve)")
		pool            = flag.Int("pool", 0, "concurrent engine sweeps (0 = all cores)")
		queue           = flag.Int("queue", 0, "admission queue depth past the pool (0 = 4x pool, -1 = none)")
		circuitCacheMB  = flag.Int64("circuit-cache-mb", 256, "parsed-circuit cache bound (MiB)")
		reportCacheMB   = flag.Int64("report-cache-mb", 64, "memoized-report cache bound (MiB)")
		workers         = flag.String("workers", "", "comma-separated worker base URLs (coordinator mode)")
		shardsPerWorker = flag.Int("shards-per-worker", 2, "shards the coordinator cuts per worker")
		shardAttempts   = flag.Int("shard-attempts", 0, "dispatch attempts per shard (0 = 2 + workers)")
		checkpointDir   = flag.String("checkpoint-dir", "", "durable shard-commit directory (coordinator mode)")
		drainTimeout    = flag.Duration("drain-timeout", 15*time.Second, "graceful-drain bound on SIGTERM")

		target      = flag.String("target", "", "daemon base URL to load (loadgen)")
		profile     = flag.String("profile", "s38417", "circuit profile the loadgen request analyzes")
		frames      = flag.Int("frames", 1, "frames option of the loadgen request")
		concurrency = flag.Int("concurrency", 8, "closed-loop loadgen clients")
		duration    = flag.Duration("duration", 10*time.Second, "loadgen measured phase")
		out         = flag.String("out", "bench-serd.json", "loadgen result artifact path (\"\" = stdout only)")
	)
	flag.Parse()

	switch *mode {
	case "serve":
		os.Exit(serve(*addr, serd.Config{
			PoolSize:          *pool,
			MaxQueue:          *queue,
			CircuitCacheBytes: *circuitCacheMB << 20,
			ReportCacheBytes:  *reportCacheMB << 20,
			Workers:           splitList(*workers),
			ShardsPerWorker:   *shardsPerWorker,
			ShardAttempts:     *shardAttempts,
			CheckpointDir:     *checkpointDir,
		}, *drainTimeout))
	case "loadgen":
		os.Exit(loadgen(*target, *profile, *frames, *concurrency, *duration, *out))
	default:
		fmt.Fprintf(os.Stderr, "serd: unknown -mode %q (serve | loadgen)\n", *mode)
		os.Exit(2)
	}
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// serve runs the daemon until SIGTERM/SIGINT, then drains gracefully:
// listeners close immediately, in-flight analyses and streams run to
// completion (or the drain bound), and only then does the process exit.
func serve(addr string, cfg serd.Config, drain time.Duration) int {
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "serd: %v\n", err)
			return 4
		}
	}
	s := serd.New(cfg)
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serd: listening on %s (pool=%d workers=%d)", addr, cfg.PoolSize, len(cfg.Workers))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "serd: %v\n", err)
		return 4
	case sig := <-sigc:
		log.Printf("serd: %v received, draining for up to %v", sig, drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("serd: drain incomplete: %v", err)
		_ = srv.Close()
		return 4
	}
	log.Printf("serd: drained cleanly")
	return 0
}

// loadgen drives a running daemon and writes the bench-serd.json artifact.
func loadgen(target, profile string, frames, concurrency int, duration time.Duration, out string) int {
	if target == "" {
		fmt.Fprintln(os.Stderr, "serd: -mode loadgen requires -target")
		return 2
	}
	req := serd.AnalyzeRequest{
		Circuit: serd.CircuitSource{Profile: profile},
		Options: serd.Options{Frames: frames},
	}
	res, err := serd.Loadgen(context.Background(), serd.LoadgenConfig{
		Target:      target,
		Request:     req,
		Concurrency: concurrency,
		Duration:    duration,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serd: loadgen: %v\n", err)
		if res == nil {
			return 4
		}
	}
	data, merr := json.MarshalIndent(res, "", "  ")
	if merr != nil {
		fmt.Fprintf(os.Stderr, "serd: %v\n", merr)
		return 4
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if out != "" {
		if werr := os.WriteFile(out, data, 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "serd: %v\n", werr)
			return 4
		}
	}
	if err != nil {
		return 4
	}
	return 0
}
