// Command serd runs the SER estimation service: a long-running HTTP daemon
// serving analyses (parse-once circuit cache, fingerprint-memoized reports,
// NDJSON tile streaming, admission control), optionally coordinating sharded
// sweeps over a worker fleet — or, in loadgen mode, a load generator
// measuring a running daemon's cached-request throughput and latency.
//
// Serve mode:
//
//	serd [-addr :8347] [flags]
//
//	-addr :8347            listen address
//	-pool 0                concurrent engine sweeps (0 = all cores)
//	-queue 0               admission queue depth past the pool (0 = 4× pool, -1 = none)
//	-circuit-cache-mb 256  parsed-circuit cache bound
//	-report-cache-mb 64    memoized-report cache bound
//	-workers ""            comma-separated worker base URLs (coordinator mode)
//	-shards-per-worker 2   shards the coordinator cuts per worker
//	-shard-attempts 0      dispatch attempts per shard (0 = 2 + workers)
//	-checkpoint-dir ""     durable shard-commit directory (coordinator mode)
//	-shard-timeout 0       per-shard-attempt deadline (0 = none)
//	-retry-backoff 25ms    base redispatch delay (exponential, jittered)
//	-retry-seed 1          deterministic jitter seed
//	-breaker-threshold 2   consecutive failures that open a worker breaker
//	-breaker-probe 500ms   healthz probe interval for open workers
//	-hedge-delay 50ms      straggler age before hedged dispatch (-1ns = off)
//	-drain-timeout 15s     graceful-drain bound on SIGTERM/SIGINT
//
// Endpoints: POST /v1/analyze (JSON in; one JSON document out, or NDJSON
// tiles with "stream": true or Accept: application/x-ndjson), POST
// /v1/shard (the coordinator/worker protocol), GET /v1/stats, GET /healthz
// and GET /v1/healthz (the breaker probe target). On SIGTERM or SIGINT the
// daemon stops accepting connections and drains in-flight requests for up
// to -drain-timeout before exiting.
//
// Analyze mode (one-shot client):
//
//	serd -mode analyze -target http://host:8347 [flags]
//
//	-target URL          daemon to query (required)
//	-profile s38417      circuit profile to analyze
//	-frames 1            frames option of the request
//	-allow-partial       accept a degraded (partial) result
//
// Prints the AnalyzeResponse JSON. The exit code is the result contract:
// 0 is a complete report, 3 a partial (degraded) one — only possible with
// -allow-partial, when the coordinator abandoned shards whose workers
// exhausted the retry budget; the uncovered node ranges are disclosed in
// the response — so scripts can distinguish "trustworthy but incomplete"
// from success (0) and from failure (4) without parsing the body.
//
// Loadgen mode:
//
//	serd -mode loadgen -target http://host:8347 [flags]
//
//	-target URL          daemon to load (required)
//	-profile s38417      circuit profile every request analyzes
//	-frames 1            frames option of the generated request
//	-concurrency 8       closed-loop clients
//	-duration 10s        measured phase length
//	-out bench-serd.json result artifact path ("" = stdout only)
//
// The generator primes the daemon once (parsing and sweeping the circuit,
// populating both caches) and then measures the cached path — repeat sweeps
// are fingerprint cache hits — reporting requests/sec and p50/p90/p99
// latency, written as one JSON document to -out.
//
// Exit codes: 0 success, 2 usage error, 3 partial result (analyze mode),
// 4 runtime error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serd"
)

func main() {
	var (
		mode = flag.String("mode", "serve", "serve | loadgen | analyze")

		addr            = flag.String("addr", ":8347", "listen address (serve)")
		pool            = flag.Int("pool", 0, "concurrent engine sweeps (0 = all cores)")
		queue           = flag.Int("queue", 0, "admission queue depth past the pool (0 = 4x pool, -1 = none)")
		circuitCacheMB  = flag.Int64("circuit-cache-mb", 256, "parsed-circuit cache bound (MiB)")
		reportCacheMB   = flag.Int64("report-cache-mb", 64, "memoized-report cache bound (MiB)")
		workers         = flag.String("workers", "", "comma-separated worker base URLs (coordinator mode)")
		shardsPerWorker = flag.Int("shards-per-worker", 2, "shards the coordinator cuts per worker")
		shardAttempts   = flag.Int("shard-attempts", 0, "dispatch attempts per shard (0 = 2 + workers)")
		checkpointDir   = flag.String("checkpoint-dir", "", "durable shard-commit directory (coordinator mode)")
		ecoCacheDir     = flag.String("eco-cache", "", "directory-backed incremental re-estimation cache (local sweeps)")
		shardTimeout    = flag.Duration("shard-timeout", 0, "per-shard-attempt deadline (0 = none)")
		retryBackoff    = flag.Duration("retry-backoff", 0, "base shard redispatch delay (0 = 25ms)")
		retrySeed       = flag.Uint64("retry-seed", 0, "deterministic retry-jitter seed (0 = 1)")
		breakerThresh   = flag.Int("breaker-threshold", 0, "consecutive failures that open a worker breaker (0 = 2)")
		breakerProbe    = flag.Duration("breaker-probe", 0, "healthz probe interval for open workers (0 = 500ms)")
		hedgeDelay      = flag.Duration("hedge-delay", 0, "straggler age before hedged dispatch (0 = 50ms, negative = off)")
		drainTimeout    = flag.Duration("drain-timeout", 15*time.Second, "graceful-drain bound on SIGTERM")

		target       = flag.String("target", "", "daemon base URL (loadgen, analyze)")
		profile      = flag.String("profile", "s38417", "circuit profile the request analyzes")
		frames       = flag.Int("frames", 1, "frames option of the generated request")
		allowPartial = flag.Bool("allow-partial", false, "accept a degraded partial result (analyze)")
		concurrency  = flag.Int("concurrency", 8, "closed-loop loadgen clients")
		duration     = flag.Duration("duration", 10*time.Second, "loadgen measured phase")
		out          = flag.String("out", "bench-serd.json", "loadgen result artifact path (\"\" = stdout only)")
	)
	flag.Parse()

	switch *mode {
	case "serve":
		os.Exit(serve(*addr, serd.Config{
			PoolSize:          *pool,
			MaxQueue:          *queue,
			CircuitCacheBytes: *circuitCacheMB << 20,
			ReportCacheBytes:  *reportCacheMB << 20,
			Workers:           splitList(*workers),
			ShardsPerWorker:   *shardsPerWorker,
			ShardAttempts:     *shardAttempts,
			CheckpointDir:     *checkpointDir,
			ECOCacheDir:       *ecoCacheDir,
			ShardTimeout:      *shardTimeout,
			RetryBackoff:      *retryBackoff,
			RetrySeed:         *retrySeed,
			BreakerThreshold:  *breakerThresh,
			BreakerProbe:      *breakerProbe,
			HedgeDelay:        *hedgeDelay,
		}, *drainTimeout))
	case "loadgen":
		os.Exit(loadgen(*target, *profile, *frames, *concurrency, *duration, *out))
	case "analyze":
		os.Exit(analyze(*target, *profile, *frames, *allowPartial))
	default:
		fmt.Fprintf(os.Stderr, "serd: unknown -mode %q (serve | loadgen | analyze)\n", *mode)
		os.Exit(2)
	}
}

// analyze posts one analyze request and prints the response JSON. The exit
// code carries the result contract: 0 complete, 2 usage, 3 partial
// (degraded — the response discloses the uncovered node ranges), 4 failure.
func analyze(target, profile string, frames int, allowPartial bool) int {
	if target == "" {
		fmt.Fprintln(os.Stderr, "serd: -mode analyze requires -target")
		return 2
	}
	body, err := json.Marshal(serd.AnalyzeRequest{
		Circuit:      serd.CircuitSource{Profile: profile},
		Options:      serd.Options{Frames: frames},
		AllowPartial: allowPartial,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serd: %v\n", err)
		return 4
	}
	resp, err := http.Post(target+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "serd: %v\n", err)
		return 4
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serd: %v\n", err)
		return 4
	}
	os.Stdout.Write(data)
	switch resp.StatusCode {
	case http.StatusOK:
		return 0
	case http.StatusPartialContent:
		fmt.Fprintln(os.Stderr, "serd: partial result (some node ranges uncovered)")
		return 3
	default:
		fmt.Fprintf(os.Stderr, "serd: HTTP %d\n", resp.StatusCode)
		return 4
	}
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// serve runs the daemon until SIGTERM/SIGINT, then drains gracefully:
// listeners close immediately, in-flight analyses and streams run to
// completion (or the drain bound), and only then does the process exit.
func serve(addr string, cfg serd.Config, drain time.Duration) int {
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "serd: %v\n", err)
			return 4
		}
	}
	s := serd.New(cfg)
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serd: listening on %s (pool=%d workers=%d)", addr, cfg.PoolSize, len(cfg.Workers))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "serd: %v\n", err)
		return 4
	case sig := <-sigc:
		log.Printf("serd: %v received, draining for up to %v", sig, drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("serd: drain incomplete: %v", err)
		_ = srv.Close()
		return 4
	}
	log.Printf("serd: drained cleanly")
	return 0
}

// loadgen drives a running daemon and writes the bench-serd.json artifact.
func loadgen(target, profile string, frames, concurrency int, duration time.Duration, out string) int {
	if target == "" {
		fmt.Fprintln(os.Stderr, "serd: -mode loadgen requires -target")
		return 2
	}
	req := serd.AnalyzeRequest{
		Circuit: serd.CircuitSource{Profile: profile},
		Options: serd.Options{Frames: frames},
	}
	res, err := serd.Loadgen(context.Background(), serd.LoadgenConfig{
		Target:      target,
		Request:     req,
		Concurrency: concurrency,
		Duration:    duration,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serd: loadgen: %v\n", err)
		if res == nil {
			return 4
		}
	}
	data, merr := json.MarshalIndent(res, "", "  ")
	if merr != nil {
		fmt.Fprintf(os.Stderr, "serd: %v\n", merr)
		return 4
	}
	data = append(data, '\n')
	os.Stdout.Write(data)
	if out != "" {
		if werr := os.WriteFile(out, data, 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "serd: %v\n", werr)
			return 4
		}
	}
	if err != nil {
		return 4
	}
	return 0
}
