// Command benchgen emits the synthetic ISCAS'89-profile circuits used by the
// Table 2 reproduction as .bench files, so they can be inspected, diffed, or
// fed to external tools. Real ISCAS'89 netlists can be substituted for these
// files anywhere in the harness (see DESIGN.md, Substitution 1).
//
// Usage:
//
//	benchgen -out dir            write all eleven profiles into dir
//	benchgen -circuit s953       write one profile to stdout
//	benchgen -list               list available profiles with their stats
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/report"
)

func main() {
	var (
		out     = flag.String("out", "", "directory to write all profiles into")
		circuit = flag.String("circuit", "", "write a single named profile to stdout")
		list    = flag.Bool("list", false, "list available profiles")
	)
	flag.Parse()

	switch {
	case *list:
		t := report.NewTable("ISCAS'89 profiles (synthetic stand-ins)",
			"name", "PIs", "POs", "FFs", "gates", "nodes", "depth")
		for _, p := range gen.ISCAS89 {
			c, err := gen.FromProfile(p)
			if err != nil {
				fatal(err)
			}
			s := c.Stats()
			t.AddRowf(p.Name, s.PIs, s.POs, s.FFs, s.Gates, s.Nodes, s.MaxLevel)
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
	case *circuit != "":
		c, err := gen.ByName(*circuit)
		if err != nil {
			fatal(err)
		}
		if err := bench.Write(os.Stdout, c); err != nil {
			fatal(err)
		}
	case *out != "":
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, p := range gen.ISCAS89 {
			c, err := gen.FromProfile(p)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*out, p.Name+".bench")
			if err := bench.WriteFile(path, c); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%s)\n", path, c.Stats())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
	os.Exit(1)
}
