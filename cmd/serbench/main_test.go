package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
)

// TestBenchJSONGolden pins the serbench -json output format: field names,
// order, indentation and the trailing newline. Timing fields vary run to
// run, so the golden file is compared against fixed rows serialized through
// the same marshalBenchRows path the command uses.
func TestBenchJSONGolden(t *testing.T) {
	rows := []benchRow{
		{Circuit: "s953", Engine: "epp-batch", Nodes: 440, Gates: 395, NsPerOp: 1.25e6, AllocsPerOp: 1, BytesPerOp: 2048, SweptNodesPerSite: 3.925},
		{Circuit: "s1196", Engine: "epp-batch", Nodes: 561, Gates: 529, NsPerOp: 2.5e6, AllocsPerOp: 0, BytesPerOp: 0},
		{Circuit: "s953", Engine: "monte-carlo", Nodes: 440, Gates: 395, NsPerOp: 9.5e6, AllocsPerOp: 12, BytesPerOp: 4096, SweptNodesPerSite: 52.5, GoodSimsPerWord: 1},
	}
	got, err := marshalBenchRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bench_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json output drifted from %s:\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestBenchCircuitRow runs one real measurement through the engine-driven
// bench path and checks the row carries the canonical engine name and sane
// measurements, and that the JSON round-trips.
func TestBenchCircuitRow(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loop")
	}
	eng, err := engine.Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	c := gen.SmallRandom(1)
	row, err := benchCircuit(eng, c, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Engine != "epp-batch" {
		t.Errorf("row.Engine = %q", row.Engine)
	}
	if row.Nodes != c.N() || row.NsPerOp <= 0 {
		t.Errorf("row = %+v", row)
	}
	if row.SweptNodesPerSite <= 0 {
		t.Errorf("SweptNodesPerSite = %v, want > 0 for epp-batch", row.SweptNodesPerSite)
	}
	if row.GoodSimsPerWord != 0 {
		t.Errorf("GoodSimsPerWord = %v, want 0 (unrecorded) for epp-batch", row.GoodSimsPerWord)
	}
	buf, err := marshalBenchRows([]benchRow{row})
	if err != nil {
		t.Fatal(err)
	}
	var back []benchRow
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Circuit != row.Circuit || back[0].Engine != row.Engine {
		t.Errorf("round-trip = %+v", back)
	}
}
