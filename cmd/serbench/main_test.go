package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
)

// TestBenchJSONGolden pins the serbench -json output format: field names,
// order, indentation and the trailing newline. Timing fields vary run to
// run, so the golden file is compared against fixed rows serialized through
// the same marshalBenchRows path the command uses.
func TestBenchJSONGolden(t *testing.T) {
	rows := []benchRow{
		{Circuit: "s953", Engine: "epp-batch", Nodes: 440, Gates: 395, NsPerOp: 1.25e6, AllocsPerOp: 1, BytesPerOp: 2048, SweptNodesPerSite: 3.925},
		{Circuit: "s1196", Engine: "epp-batch", Nodes: 561, Gates: 529, NsPerOp: 2.5e6, AllocsPerOp: 0, BytesPerOp: 0},
		{Circuit: "s953", Engine: "monte-carlo", Nodes: 440, Gates: 395, NsPerOp: 9.5e6, AllocsPerOp: 12, BytesPerOp: 4096, SweptNodesPerSite: 52.5, GoodSimsPerWord: 1},
		{Circuit: "s953", Engine: "monte-carlo", Nodes: 440, Gates: 395, Frames: 4, NsPerOp: 3.8e7, AllocsPerOp: 12, BytesPerOp: 4096, SweptNodesPerSite: 210.5, GoodSimsPerWord: 4},
	}
	got, err := marshalBenchRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bench_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-json output drifted from %s:\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestBenchCircuitRow runs one real measurement through the engine-driven
// bench path and checks the row carries the canonical engine name and sane
// measurements, and that the JSON round-trips.
func TestBenchCircuitRow(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loop")
	}
	eng, err := engine.Lookup("epp-batch")
	if err != nil {
		t.Fatal(err)
	}
	c := gen.SmallRandom(1)
	row, err := benchCircuit(context.Background(), eng, c, 1, 1, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.Engine != "epp-batch" {
		t.Errorf("row.Engine = %q", row.Engine)
	}
	if row.Nodes != c.N() || row.NsPerOp <= 0 {
		t.Errorf("row = %+v", row)
	}
	if row.SweptNodesPerSite <= 0 {
		t.Errorf("SweptNodesPerSite = %v, want > 0 for epp-batch", row.SweptNodesPerSite)
	}
	if row.GoodSimsPerWord != 0 {
		t.Errorf("GoodSimsPerWord = %v, want 0 (unrecorded) for epp-batch", row.GoodSimsPerWord)
	}
	buf, err := marshalBenchRows([]benchRow{row})
	if err != nil {
		t.Fatal(err)
	}
	var back []benchRow
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Circuit != row.Circuit || back[0].Engine != row.Engine {
		t.Errorf("round-trip = %+v", back)
	}
}

// TestAccuracySharedGoodSim verifies the accuracy mode's one-pass fix with
// the good-sim counters: comparing several engines — the monte-carlo engine
// itself included, so both the reference and a compared engine want the
// same sampling sweep — must cost exactly one good simulation per (word,
// frame) for the whole comparison, not one pass per engine.
func TestAccuracySharedGoodSim(t *testing.T) {
	c := gen.SmallRandomSequential(7)
	const vectors, frames = 640, 3 // 10 words
	engines := []string{"epp-batch", "epp-scalar", "monte-carlo"}
	rows, stats, err := accuracyCircuit(context.Background(), c, engines, frames, 1, vectors, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(engines) {
		t.Fatalf("%d rows for %d engines", len(rows), len(engines))
	}
	words := int64((vectors + 63) / 64)
	if got := stats.Words.Load(); got != words {
		t.Errorf("Words = %d, want %d (one reference pass, not one per engine)", got, words)
	}
	if got := stats.GoodSims.Load(); got != words*frames {
		t.Errorf("GoodSims = %d, want %d (exactly one good sim per word per frame across the whole comparison)",
			got, words*frames)
	}
	// The monte-carlo row must be the cached reference verbatim: zero diff.
	for _, r := range rows {
		if r.Engine == "monte-carlo" && (r.MAE != 0 || r.Worst != 0) {
			t.Errorf("monte-carlo vs itself: MAE %v, worst %v — the reference pass was not shared", r.MAE, r.Worst)
		}
	}
	// And the analytic rows must actually measure something.
	for _, r := range rows {
		if r.Sites != c.N() {
			t.Errorf("%s: sites = %d, want %d", r.Engine, r.Sites, c.N())
		}
	}
}

// TestAccuracySingleCycleShared: same counter proof at frames == 1 (the
// single-cycle MCBatch path).
func TestAccuracySingleCycleShared(t *testing.T) {
	c := gen.SmallRandom(3)
	const vectors = 512 // 8 words
	_, stats, err := accuracyCircuit(context.Background(), c, []string{"epp-batch", "monte-carlo"}, 1, 1, vectors, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	words := int64((vectors + 63) / 64)
	if got := stats.GoodSims.Load(); got != words {
		t.Errorf("GoodSims = %d, want %d", got, words)
	}
}
