// Command serbench regenerates the paper's Table 2: it runs the EPP analysis
// and the random-simulation baseline on the eleven ISCAS'89-profile circuits
// and prints runtime, accuracy and speedup columns in the paper's layout.
//
// Usage:
//
//	serbench [flags]
//
//	-circuits s953,s1196   comma-separated circuit names (default: all 11)
//	-vectors 10000         random vectors per sampled node for the baseline
//	-sample 50             error sites simulated by the baseline per circuit
//	-sp-vectors 100000     vectors for Monte Carlo signal probability
//	-seed 1                seed for all randomized components
//	-baseline naive        baseline engine: naive | bit-parallel
//	-workers 1             EPP sweep parallelism (1 = paper-style single CPU)
//	-csv out.csv           also write the table as CSV
//	-quick                 small vector counts for a fast smoke run
//	-timeout 0             overall wall-clock budget (0 = none)
//
// Modes beyond the main table:
//
//	-mode table2           the full Table 2 reproduction (default)
//	-mode sp-ablation      EPP accuracy with topological vs Monte Carlo SP
//	-mode exact-accuracy   EPP vs BDD-exact P_sensitized (small profiles)
//	-mode accuracy         per-engine accuracy vs the shared sampling reference
//	-mode bench            per-circuit P_sensitized kernel timing (ns/op, allocs/op)
//
// Bench mode times engines from the registry (-engine, a comma-separated
// list, default epp-batch; see sercalc -engines for the set). Each circuit
// is parsed and finalized exactly once per invocation — all timed engines
// share the one instance through the circuitio parse cache — and -json FILE
// additionally writes the measurements as a JSON array ({circuit, engine,
// nodes, gates, ns_per_op, allocs_per_op, bytes_per_op}) so successive runs
// can be tracked as a BENCH_*.json trajectory. Passing -json with the default mode
// implies -mode bench. -frames N > 1 times (or compares) the multi-cycle
// detection analysis instead of the single-cycle P_sensitized, for every
// engine that supports it (epp-batch, epp-scalar, monte-carlo).
// -latch "clock=1000,pulse=150,window=30,atten=0.95" (or -latch default)
// additionally couples the latching-window model into the multi-cycle
// composition — bench and accuracy modes then run the latch-window-weighted
// detection probability; keys may be omitted to keep the documented
// defaults. The flag requires -frames N > 1 and one of those two modes;
// combinations that would silently ignore it are rejected.
//
// Accuracy mode compares the engines named by -compare (default
// epp-batch,epp-scalar,monte-carlo) against one shared Monte Carlo
// reference pass per circuit: the reference P_sensitized vector is computed
// once per (circuit, vectors, seed, frames) and reused for every engine
// under comparison — including the monte-carlo engine itself — so the full
// good simulation runs exactly once per circuit no matter how many engines
// are compared. The goodsims/word column proves it: the shared kernels pin
// it at 1 per frame even though every comparison consumed the pass.
//
// With -timeout set, the deadline is honored at circuit granularity: the
// timed kernels run to completion (aborting mid-measurement would corrupt
// the row), but no new circuit starts once the budget is spent.
//
// Exit codes: 0 success, 2 usage error, 3 deadline exceeded (partial
// progress on stderr), 4 internal error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bddsp"
	"repro/internal/circuitio"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/latch"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/sigprob"
	"repro/internal/table2"
)

func main() {
	var (
		circuits  = flag.String("circuits", "", "comma-separated circuit names (default all)")
		vectors   = flag.Int("vectors", 10000, "random vectors per sampled node")
		sample    = flag.Int("sample", 50, "error sites simulated by the baseline")
		spVectors = flag.Int("sp-vectors", 100000, "vectors for Monte Carlo signal probability")
		seed      = flag.Uint64("seed", 1, "seed for randomized components")
		baseline  = flag.String("baseline", "naive", "baseline engine: naive | bit-parallel")
		workers   = flag.Int("workers", 1, "EPP sweep parallelism")
		csvPath   = flag.String("csv", "", "also write the table as CSV to this file")
		jsonPath  = flag.String("json", "", "write bench-mode measurements as JSON to this file")
		engName   = flag.String("engine", "epp-batch", "comma-separated P_sensitized engines timed by bench mode")
		compare   = flag.String("compare", "epp-batch,epp-scalar,monte-carlo", "engines compared by accuracy mode")
		frames    = flag.Int("frames", 1, "clock cycles for multi-cycle detection (bench and accuracy modes)")
		latchSpec = flag.String("latch", "", `latch-window coupling for multi-cycle runs: "default" or "clock=…,pulse=…,window=…,atten=…" (empty = uncoupled)`)
		quick     = flag.Bool("quick", false, "small vector counts for a fast smoke run")
		mode      = flag.String("mode", "table2", "table2 | sp-ablation | exact-accuracy | accuracy | bench")
		timeout   = flag.Duration("timeout", 0, "overall wall-clock budget, honored at circuit granularity (0 = none)")
	)
	flag.Parse()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	modeSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "mode" {
			modeSet = true
		}
	})
	if *jsonPath != "" && *mode != "bench" {
		if modeSet {
			// An explicitly requested non-bench mode must not be silently
			// replaced by the kernel benchmark.
			fmt.Fprintf(os.Stderr, "serbench: -json is only supported with -mode bench\n")
			os.Exit(2)
		}
		*mode = "bench"
	}

	cfg := table2.Config{
		MCVectors:   *vectors,
		SampleNodes: *sample,
		SPVectors:   *spVectors,
		Seed:        *seed,
		Workers:     *workers,
	}
	switch *baseline {
	case "naive":
		cfg.Baseline = table2.BaselineNaive
	case "bit-parallel":
		cfg.Baseline = table2.BaselineBitParallel
	default:
		fmt.Fprintf(os.Stderr, "serbench: unknown baseline %q\n", *baseline)
		os.Exit(2)
	}
	if *quick {
		cfg.MCVectors = 1024
		cfg.SampleNodes = 20
		cfg.SPVectors = 8192
	}

	var names []string
	if *circuits != "" {
		names = strings.Split(*circuits, ",")
	}

	lm, err := parseLatch(*latchSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serbench: %v\n", err)
		os.Exit(2)
	}
	if lm != nil {
		// Reject rather than silently ignore: only the multi-cycle bench and
		// accuracy paths consume the latch-window coupling (the engines
		// ignore Request.Latch for single-frame requests).
		if *mode != "bench" && *mode != "accuracy" {
			fmt.Fprintf(os.Stderr, "serbench: -latch is only consumed by -mode bench and -mode accuracy\n")
			os.Exit(2)
		}
		if *frames <= 1 {
			fmt.Fprintf(os.Stderr, "serbench: -latch weights the multi-cycle composition; pass -frames N > 1\n")
			os.Exit(2)
		}
	}

	switch *mode {
	case "table2":
		runTable2(ctx, names, cfg, *csvPath)
	case "sp-ablation":
		runSPAblation(ctx, names, cfg)
	case "exact-accuracy":
		runExactAccuracy(ctx, names, cfg)
	case "accuracy":
		runAccuracy(ctx, names, strings.Split(*compare, ","), *frames, cfg.Workers, cfg.MCVectors, cfg.Seed, lm)
	case "bench":
		runBench(ctx, names, strings.Split(*engName, ","), *jsonPath, *frames, cfg.Workers, cfg.MCVectors, cfg.Seed, lm)
	default:
		fmt.Fprintf(os.Stderr, "serbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// fatal reports a run error and exits with the documented code: 3 for a
// missed deadline (with partial sweep progress when an engine surfaced it),
// 4 for any other internal error.
func fatal(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		msg := "deadline exceeded"
		var perr *engine.PartialError
		if errors.As(err, &perr) {
			msg = fmt.Sprintf("deadline exceeded after %d/%d node units", perr.Done, perr.Total)
		}
		fmt.Fprintf(os.Stderr, "serbench: %s\n", msg)
		os.Exit(3)
	}
	fmt.Fprintf(os.Stderr, "serbench: %v\n", err)
	os.Exit(4)
}

// parseLatch parses the -latch flag: "" disables the latch-window coupling,
// "default" selects the documented default model, and a comma-separated
// "key=value" list over clock, pulse, window (ps) and atten overrides
// individual parameters of the default model.
func parseLatch(spec string) (*latch.Model, error) {
	if spec == "" {
		return nil, nil
	}
	m := latch.Default()
	if spec != "default" {
		for _, kv := range strings.Split(spec, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("-latch entry %q is not key=value", kv)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("-latch %s: %v", key, err)
			}
			switch key {
			case "clock":
				m.ClockPeriodPs = f
			case "pulse":
				m.PulseWidthPs = f
			case "window":
				m.WindowPs = f
			case "atten":
				m.AttenuationPerLevel = f
			default:
				return nil, fmt.Errorf("-latch key %q (want clock, pulse, window or atten)", key)
			}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// benchRow is one circuit's kernel measurement, serialized by -json. The
// counter ratios make the batching wins visible in the artifact trajectory:
// swept_nodes_per_site is the batched EPP engine's cone-locality
// efficiency (union-cone nodes swept per site; a full-cone per-site sweep
// would pay the mean cone size), and good_sims_per_word is the sampling
// engine's good-simulation sharing (exactly 1 for the shared-good-sim
// kernel; the per-site estimator pays one per site). Zero-valued counters
// (an engine that does not record them) are omitted.
type benchRow struct {
	Circuit           string  `json:"circuit"`
	Engine            string  `json:"engine"`
	Nodes             int     `json:"nodes"`
	Gates             int     `json:"gates"`
	Frames            int     `json:"frames,omitempty"` // only recorded for multi-cycle rows
	NsPerOp           float64 `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	BytesPerOp        int64   `json:"bytes_per_op"`
	SweptNodesPerSite float64 `json:"swept_nodes_per_site,omitempty"`
	GoodSimsPerWord   float64 `json:"good_sims_per_word,omitempty"`
}

// marshalBenchRows renders the bench measurements exactly as -json writes
// them (stable field order, two-space indent, trailing newline); factored
// out so the golden test pins the format.
func marshalBenchRows(rows []benchRow) ([]byte, error) {
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// benchCircuit times one engine's all-sites P_sensitized sweep on one
// circuit under the Go benchmark methodology. The warm-up pass doubles as
// the counted pass: it carries an engine.Stats whose ratios land in the
// row. workers bounds the sweep's parallelism (the -workers flag defaults
// to 1 so BENCH_*.json rows track the kernel, not the machine's core
// count); vectors/seed configure the sampling engines (0 = engine
// default); frames > 1 times the multi-cycle detection analysis instead,
// latch-window weighted when lm is non-nil (-latch).
func benchCircuit(ctx context.Context, eng engine.Engine, c *netlist.Circuit, frames, workers, vectors int, seed uint64, lm *latch.Model) (benchRow, error) {
	var stats engine.Stats
	req := engine.Request{
		Circuit: c,
		SP:      sigprob.Topological(c, sigprob.Config{}),
		Workers: workers,
		Frames:  frames,
		Latch:   lm,
		Vectors: vectors,
		Seed:    seed,
		Stats:   &stats,
	}
	out := make([]float64, c.N())
	// Warm the engine's scratch, count the work, and surface config errors
	// outside the timing loop. The deadline is checked here, not inside the
	// timed loop: an aborted measurement would corrupt the row.
	if err := ctx.Err(); err != nil {
		return benchRow{}, err
	}
	ctx = context.WithoutCancel(ctx)
	if err := eng.PSensitizedAll(ctx, &req, out); err != nil {
		return benchRow{}, err
	}
	req.Stats = nil // keep counter writes out of the timed loop
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := eng.PSensitizedAll(ctx, &req, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	row := benchRow{
		Circuit:           c.Name,
		Engine:            eng.Name(),
		Nodes:             c.N(),
		Gates:             c.Stats().Gates,
		NsPerOp:           float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp:       res.AllocsPerOp(),
		BytesPerOp:        res.AllocedBytesPerOp(),
		SweptNodesPerSite: stats.SweptNodesPerSite(),
		GoodSimsPerWord:   stats.GoodSimsPerWord(),
	}
	if frames > 1 {
		row.Frames = frames
	}
	return row, nil
}

// runBench times the all-sites P_sensitized kernel of the selected engine
// (the "SysT" quantity for the EPP engines) per circuit and optionally
// writes the rows as JSON, so future changes can be compared as a time
// series of BENCH_*.json files. Work-counter ratios (swept nodes per site,
// good sims per word) ride along so locality and good-sim-sharing wins show
// up in the artifact trajectory, not just wall-clock.
func runBench(ctx context.Context, names []string, engNames []string, jsonPath string, frames, workers, vectors int, seed uint64, lm *latch.Model) {
	// Resolve every engine up front so a typo anywhere in the list is a
	// usage error before any measurement starts.
	engs := make([]engine.Engine, 0, len(engNames))
	for _, en := range engNames {
		eng, err := engine.Lookup(strings.TrimSpace(en))
		if err != nil {
			fmt.Fprintf(os.Stderr, "serbench: %v\n", err)
			os.Exit(2)
		}
		engs = append(engs, eng)
	}
	if names == nil {
		names = gen.Names()
	}
	title := "all-sites P_sensitized kernel"
	if frames > 1 {
		title = fmt.Sprintf("all-sites multi-cycle detection kernel (%d frames)", frames)
		if lm != nil {
			title += ", latch-window weighted"
		}
	}
	t := report.NewTable(
		title,
		"Circuit", "Engine", "Nodes", "ns/op", "allocs/op", "B/op", "swept/site", "goodsims/word",
	)
	rows := make([]benchRow, 0, len(names)*len(engs))
	for _, name := range names {
		// One parse+finalize per circuit per invocation, no matter how many
		// engines time it: the shared circuitio cache hands every engine the
		// same finalized instance.
		c, err := loadProfile(name)
		if err != nil {
			fatal(err)
		}
		for _, eng := range engs {
			row, err := benchCircuit(ctx, eng, c, frames, workers, vectors, seed, lm)
			if err != nil {
				fatal(fmt.Errorf("%s/%s: %w", name, eng.Name(), err))
			}
			rows = append(rows, row)
			t.AddRowf(row.Circuit, row.Engine, row.Nodes, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp,
				row.SweptNodesPerSite, row.GoodSimsPerWord)
			fmt.Fprintf(os.Stderr, "done %-8s %-12s %.3fms/op %d allocs/op\n",
				name, row.Engine, row.NsPerOp/1e6, row.AllocsPerOp)
		}
	}
	t.AddNote("one op = P_sensitized for every node (default batch width %d)", core.DefaultBatchWidth)
	t.AddNote("ops go through the stateless engine API and include per-call engine construction; BenchmarkEPPAllNodes times the warm core kernel")
	t.AddNote("swept/site = union-cone nodes per site (batched EPP); goodsims/word = good sims per 64-vector word (sampling; the shared kernels pin it at 1 per frame)")
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if jsonPath != "" {
		buf, err := marshalBenchRows(rows)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// accRow is one (circuit, engine) accuracy measurement of the accuracy mode.
type accRow struct {
	Circuit string
	Engine  string
	Sites   int
	MAE     float64 // mean |engine − reference| over all sites
	Worst   float64
}

// accuracyCircuit compares the named engines' all-sites P_sensitized (or
// multi-cycle detection, frames > 1) vectors against one shared Monte Carlo
// reference pass on circuit c. The fix this function embodies: the
// reference vector — a full shared-good-sim sampling sweep — is computed
// exactly once per (circuit, vectors, seed, frames) and reused for every
// engine under comparison, where the naive layout re-ran it once per
// engine. The returned Stats covers the whole comparison, so its good-sim
// counters prove the sharing: GoodSims == words × frames no matter how many
// engines consumed the pass (the monte-carlo engine included — it hits the
// same cache instead of re-sampling). The signal probability vector is
// likewise computed once and shared by the analytic engines.
func accuracyCircuit(ctx context.Context, c *netlist.Circuit, engines []string, frames, workers, vectors int, seed uint64, lm *latch.Model) ([]accRow, *engine.Stats, error) {
	stats := &engine.Stats{}
	sp := sigprob.Topological(c, sigprob.Config{})
	cache := map[string][]float64{}
	compute := func(name string) ([]float64, error) {
		if out, ok := cache[name]; ok {
			return out, nil
		}
		eng, err := engine.Lookup(name)
		if err != nil {
			return nil, err
		}
		req := engine.Request{
			Circuit: c,
			SP:      sp,
			Workers: workers,
			Frames:  frames,
			Latch:   lm,
			Vectors: vectors,
			Seed:    seed,
			Stats:   stats,
		}
		out := make([]float64, c.N())
		if err := eng.PSensitizedAll(ctx, &req, out); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		cache[name] = out
		return out, nil
	}
	ref, err := compute("monte-carlo")
	if err != nil {
		return nil, nil, err
	}
	rows := make([]accRow, 0, len(engines))
	for _, name := range engines {
		out, err := compute(strings.TrimSpace(name))
		if err != nil {
			return nil, nil, err
		}
		row := accRow{Circuit: c.Name, Engine: strings.TrimSpace(name), Sites: c.N()}
		for id := range out {
			d := math.Abs(out[id] - ref[id])
			row.MAE += d
			if d > row.Worst {
				row.Worst = d
			}
		}
		row.MAE /= float64(c.N())
		rows = append(rows, row)
	}
	return rows, stats, nil
}

// runAccuracy (the -mode accuracy table): per-engine accuracy against the
// shared sampling reference on each circuit, with the good-sim counters
// printed so the one-pass sharing is visible in the output.
func runAccuracy(ctx context.Context, names, engines []string, frames, workers, vectors int, seed uint64, lm *latch.Model) {
	if names == nil {
		names = gen.Names()
	}
	title := "engine accuracy vs shared Monte Carlo reference"
	if frames > 1 {
		title = fmt.Sprintf("%s (%d frames)", title, frames)
		if lm != nil {
			title += " latch-window weighted"
		}
	}
	t := report.NewTable(title, "Circuit", "Engine", "Sites", "MAE", "Worst", "goodsims/word")
	for _, name := range names {
		c, err := loadProfile(name)
		if err != nil {
			fatal(err)
		}
		rows, stats, err := accuracyCircuit(ctx, c, engines, frames, workers, vectors, seed, lm)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		for _, r := range rows {
			t.AddRowf(r.Circuit, r.Engine, r.Sites, r.MAE, r.Worst, stats.GoodSimsPerWord())
		}
		fmt.Fprintf(os.Stderr, "done %-8s (%d engines, one reference pass)\n", name, len(engines))
	}
	t.AddNote("reference = monte-carlo engine at the same (vectors, seed, frames), computed once per circuit and shared across all compared engines")
	t.AddNote("goodsims/word counts the whole comparison: the shared pass pins it at the frame count (1 good sim per word per frame), not engines x frames")
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// runExactAccuracy compares EPP against the symbolically exact (BDD-miter)
// P_sensitized on the small benchmark profiles — the strongest accuracy
// statement the harness can make, free of both sampling noise and the
// enumeration source limit. Circuits whose BDDs exceed the budget are
// skipped with a note.
func runExactAccuracy(ctx context.Context, names []string, cfg table2.Config) {
	if names == nil {
		names = gen.SmallNames()
	}
	const budget = 1 << 23
	t := report.NewTable(
		"EPP vs BDD-exact P_sensitized",
		"Circuit", "Sites", "MAE", "Worst", "%Dif-style",
	)
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		c, err := loadProfile(name)
		if err != nil {
			fatal(err)
		}
		sp, err := bddsp.SignalProb(c, nil, budget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serbench: %s: SP %v (skipped)\n", name, err)
			continue
		}
		an := core.MustNew(c, sp, core.Options{})
		sumAbs, sumTruth, worst := 0.0, 0.0, 0.0
		sites := 0
		skipped := false
		for id := 0; id < c.N(); id += 23 { // ~20-30 stratified sites
			truth, err := bddsp.PSensitized(c, netlist.ID(id), nil, budget)
			if err != nil {
				fmt.Fprintf(os.Stderr, "serbench: %s: site %d %v (circuit skipped)\n", name, id, err)
				skipped = true
				break
			}
			d := math.Abs(an.EPP(netlist.ID(id)).PSensitized - truth)
			sumAbs += d
			sumTruth += truth
			if d > worst {
				worst = d
			}
			sites++
		}
		if skipped || sites == 0 {
			continue
		}
		rel := 0.0
		if sumTruth > 0 {
			rel = 100 * sumAbs / sumTruth
		}
		t.AddRowf(name, sites, sumAbs/float64(sites), worst, rel)
		fmt.Fprintf(os.Stderr, "done %s (%d sites)\n", name, sites)
	}
	t.AddNote("truth = BDD good/faulty miter (no independence assumption, no sampling)")
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func runTable2(ctx context.Context, names []string, cfg table2.Config, csvPath string) {
	rows, err := table2.RunProfiles(ctx, names, cfg, func(r table2.Row) {
		fmt.Fprintf(os.Stderr, "done %-8s SysT=%.3fms SimT=%.1fs %%Dif=%.1f SPT=%.2fs ISP=%.0f ESP=%.0f\n",
			r.Circuit, r.SysTms, r.SimTs, r.DifPct, r.SPTs, r.ISP, r.ESP)
	})
	if err != nil {
		fatal(err)
	}
	t := table2.Render(rows)
	t.AddNote("baseline engine: %v; %d vectors/site; %d sampled sites/circuit",
		cfg.Baseline, cfg.MCVectors, cfg.SampleNodes)
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
}

// runSPAblation (experiment A3): how much does the signal probability source
// matter? Compares EPP P_sensitized driven by topological SP vs Monte Carlo
// SP against exhaustive ground truth. The ISCAS profiles exceed the
// exhaustive enumeration limit (16+ primary inputs plus flip-flops), so this
// ablation runs on generated small circuits whose support fits the limit —
// the comparison is about the SP source, not the benchmark identity.
func runSPAblation(ctx context.Context, names []string, cfg table2.Config) {
	if names != nil {
		fmt.Fprintln(os.Stderr, "serbench: -circuits is ignored in sp-ablation mode (exhaustive truth needs small circuits)")
	}
	t := report.NewTable(
		"SP-source ablation: EPP accuracy vs exhaustive truth (small random circuits)",
		"Circuit", "Sites", "MAE(topo SP)", "MAE(MC SP)",
	)
	for seed := uint64(0); seed < 8; seed++ {
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		c := gen.SmallRandom(cfg.Seed*100 + seed)
		spTopo := sigprob.Topological(c, sigprob.Config{})
		spMC := sigprob.MonteCarlo(c, sigprob.Config{Vectors: cfg.SPVectors, Seed: cfg.Seed})
		aTopo := core.MustNew(c, spTopo, core.Options{})
		aMC := core.MustNew(c, spMC, core.Options{})

		sites := 0
		maeTopo, maeMC := 0.0, 0.0
		for id := 0; id < c.N(); id++ {
			truth, err := exact.PSensitized(c, netlist.ID(id))
			if err != nil {
				fatal(err)
			}
			maeTopo += math.Abs(aTopo.EPP(netlist.ID(id)).PSensitized - truth)
			maeMC += math.Abs(aMC.EPP(netlist.ID(id)).PSensitized - truth)
			sites++
		}
		t.AddRowf(fmt.Sprintf("small-%d", seed), sites, maeTopo/float64(sites), maeMC/float64(sites))
	}
	t.AddNote("MAE = mean |EPP - exact| over all sites; exact = full input enumeration")
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// loadProfile resolves a generated profile through the shared circuitio
// parse-once path (the same helper sercalc and the serd daemon use):
// repeated loads of one circuit across modes, engines and comparisons all
// share a single finalized instance per invocation.
func loadProfile(name string) (*netlist.Circuit, error) {
	return circuitio.Load(circuitio.Source{Profile: name})
}
