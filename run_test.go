package sersim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestRunMatchesEstimate: the new pipeline reproduces the deprecated
// wrapper's report exactly (same engine, same arithmetic).
func TestRunMatchesEstimate(t *testing.T) {
	c, err := GenerateProfile("s953")
	if err != nil {
		t.Fatal(err)
	}
	old, err := Estimate(c, EstimateConfig{Method: MethodEPP})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFIT != old.TotalFIT {
		t.Fatalf("Run TotalFIT %v != Estimate TotalFIT %v", rep.TotalFIT, old.TotalFIT)
	}
	for id := range rep.Nodes {
		if rep.Nodes[id] != old.Nodes[id] {
			t.Fatalf("node %d: Run %+v != Estimate %+v", id, rep.Nodes[id], old.Nodes[id])
		}
	}
	if rep.Engine != "epp-batch" {
		t.Errorf("Run engine = %q", rep.Engine)
	}
}

// TestRunStreamMatchesRun: the streamed NodeSER sequence is exactly the
// report's Nodes slice, in ID order — for the default engine, a worker-
// parallel run, the Monte Carlo engine, and a multi-cycle sweep.
func TestRunStreamMatchesRun(t *testing.T) {
	c, err := GenerateProfile("s953")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"parallel", []Option{WithWorkers(4)}},
		{"monte-carlo", []Option{WithMethod(MethodMonteCarlo), WithVectors(256), WithSeed(9)}},
		{"frames", []Option{WithFrames(3)}},
		{"frames+mc", []Option{WithEngine("monte-carlo"), WithFrames(3), WithVectors(256), WithSeed(9)}},
		{"frames+latch", []Option{WithFrames(3), WithLatchModel(DefaultLatchModel())}},
		{"frames+latch+mc", []Option{WithEngine("monte-carlo"), WithFrames(3),
			WithLatchModel(DefaultLatchModel()), WithVectors(256), WithSeed(9)}},
		{"scalar-engine", []Option{WithEngine("epp-scalar")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(context.Background(), c, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			i := 0
			for n, err := range RunStream(context.Background(), c, tc.opts...) {
				if err != nil {
					t.Fatal(err)
				}
				if i >= len(rep.Nodes) {
					t.Fatalf("stream yielded more than %d nodes", len(rep.Nodes))
				}
				if n != rep.Nodes[i] {
					t.Fatalf("node %d: stream %+v != run %+v", i, n, rep.Nodes[i])
				}
				i++
			}
			if i != len(rep.Nodes) {
				t.Fatalf("stream yielded %d nodes, want %d", i, len(rep.Nodes))
			}
		})
	}
}

// TestRunStreamEarlyBreak: breaking out of the loop stops the sweep without
// surfacing an error.
func TestRunStreamEarlyBreak(t *testing.T) {
	c, err := GenerateProfile("s953")
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, err := range RunStream(context.Background(), c) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 10 {
			break
		}
	}
	if seen != 10 {
		t.Fatalf("consumed %d nodes, want 10", seen)
	}
}

// TestRunCancellation: a cancelled context surfaces context.Canceled from
// Run, and mid-stream cancellation ends RunStream with ctx.Err() without
// draining the remaining nodes.
func TestRunCancellation(t *testing.T) {
	c, err := GenerateProfile("s1196")
	if err != nil {
		t.Fatal(err)
	}
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := Run(pre, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: err = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	var final error
	for n, err := range RunStream(ctx, c) {
		if err != nil {
			final = err
			if n != (NodeSER{}) {
				t.Errorf("error yield carried non-zero NodeSER %+v", n)
			}
			continue
		}
		seen++
		if seen == 70 { // past the first batch: cancellation hits between batches
			cancel()
		}
	}
	if !errors.Is(final, context.Canceled) {
		t.Fatalf("stream final err = %v, want context.Canceled", final)
	}
	if seen >= c.N() {
		t.Fatalf("stream drained all %d nodes despite cancellation", c.N())
	}
}

// TestOptionValidation: contradictory or out-of-range options fail with
// descriptive errors before any work starts.
func TestOptionValidation(t *testing.T) {
	c, err := ParseBenchString(`
INPUT(a)
OUTPUT(y)
y = NOT(a)
`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"negative-workers", []Option{WithWorkers(-2)}, "Workers"},
		{"negative-frames", []Option{WithFrames(-1)}, "Frames"},
		{"negative-vectors", []Option{WithMethod(MethodMonteCarlo), WithVectors(-5)}, "Vectors"},
		{"bias-range", []Option{WithSourceBias([]float64{1.5, 0})}, "outside [0,1]"},
		{"bias-length", []Option{WithSourceBias([]float64{0.5})}, "entries"},
		{"unknown-engine", []Option{WithEngine("warp")}, "unknown engine"},
		{"method-vs-engine", []Option{WithMethod(MethodMonteCarlo), WithEngine("epp-batch")}, "contradicts"},
		{"epp-vs-mc-engine", []Option{WithMethod(MethodEPP), WithEngine("monte-carlo")}, "contradicts"},
		{"frames-on-exact", []Option{WithEngine("enum"), WithFrames(2)}, "Frames"},
		{"batch-width", []Option{WithBatchWidth(65)}, "BatchWidth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(context.Background(), c, tc.opts...)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %q, want mention of %q", err, tc.want)
			}
			// RunStream must reject identically, via its first yield.
			var streamErr error
			for _, err := range RunStream(context.Background(), c, tc.opts...) {
				streamErr = err
			}
			if streamErr == nil || streamErr.Error() != err.Error() {
				t.Fatalf("stream err = %v, run err = %v", streamErr, err)
			}
		})
	}
}

// TestMultiCycleMonteCarlo is the acceptance test for the multi-cycle Monte
// Carlo engine at the public surface: WithFrames composes with
// WithEngine("monte-carlo"), the per-node probabilities agree with the
// ground-truth sequential simulator within statistical tolerance, and
// results are bit-identical across worker counts.
func TestMultiCycleMonteCarlo(t *testing.T) {
	c, err := ParseBenchString(`
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
g1 = AND(a, b)
g2 = XOR(g1, c)
q1 = DFF(g2)
q2 = DFF(q1)
g3 = OR(q2, g1)
z = NAND(g3, q1)
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const frames, vectors = 4, 1 << 13
	rep, err := Run(ctx, c, WithEngine("monte-carlo"), WithFrames(frames),
		WithVectors(vectors), WithSeed(5), WithWorkers(1))
	if err != nil {
		t.Fatalf("Run(monte-carlo, frames=%d): %v", frames, err)
	}
	sim := NewSequentialMC(c, SeqOptions{Frames: frames, Trials: vectors, Seed: 42})
	for id := range rep.Nodes {
		ref := sim.PDetect(ID(id))
		got := rep.Nodes[id].PSensitized
		tol := 10*ref.StdErr + 0.02
		if d := got - ref.PDetect; d > tol || d < -tol {
			t.Errorf("node %d: monte-carlo frames=%d %v, sequential sim %v (|diff| > %v)",
				id, frames, got, ref.PDetect, tol)
		}
	}
	par, err := Run(ctx, c, WithEngine("monte-carlo"), WithFrames(frames),
		WithVectors(vectors), WithSeed(5), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for id := range rep.Nodes {
		if par.Nodes[id] != rep.Nodes[id] {
			t.Fatalf("node %d: workers=4 %+v != workers=1 %+v", id, par.Nodes[id], rep.Nodes[id])
		}
	}
}

// TestParseRoundTrip: ParseMethod/ParseSPMethod invert String, giving one
// canonical naming end to end.
func TestParseRoundTrip(t *testing.T) {
	for _, m := range []Method{MethodEPP, MethodMonteCarlo} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, m := range []SPMethod{SPTopological, SPMonteCarlo} {
		got, err := ParseSPMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseSPMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("exact"); err == nil {
		t.Error("ParseMethod accepted unknown name")
	}
	if _, err := ParseSPMethod("epp"); err == nil {
		t.Error("ParseSPMethod accepted unknown name")
	}
}

// TestEnginesListed: the registry surface the CLI exposes.
func TestEnginesListed(t *testing.T) {
	names := Engines()
	want := map[string]bool{"epp-batch": true, "epp-scalar": true, "monte-carlo": true, "enum": true, "bdd": true}
	if len(names) < len(want) {
		t.Fatalf("Engines() = %v", names)
	}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("Engines() = %v, missing %v", names, want)
	}
}

// TestRunWithProgress: the progress callback covers every node exactly once.
func TestRunWithProgress(t *testing.T) {
	c, err := GenerateProfile("s953")
	if err != nil {
		t.Fatal(err)
	}
	last, total := 0, 0
	_, err = Run(context.Background(), c,
		WithWorkers(1),
		WithProgress(func(done, n int) { last, total = done, n }))
	if err != nil {
		t.Fatal(err)
	}
	if last != c.N() || total != c.N() {
		t.Fatalf("final progress %d/%d, want %d/%d", last, total, c.N(), c.N())
	}
}

// TestRunExactEngines: the exact backends are reachable through Run on a
// circuit small enough to enumerate, and agree with each other.
func TestRunExactEngines(t *testing.T) {
	c, err := ParseBenchFile("testdata/majority.bench")
	if err != nil {
		t.Fatal(err)
	}
	repEnum, err := Run(context.Background(), c, WithEngine("enum"))
	if err != nil {
		t.Fatal(err)
	}
	repBDD, err := Run(context.Background(), c, WithEngine("bdd"))
	if err != nil {
		t.Fatal(err)
	}
	for id := range repEnum.Nodes {
		if repEnum.Nodes[id].PSensitized != repBDD.Nodes[id].PSensitized {
			t.Fatalf("node %d: enum %v != bdd %v", id,
				repEnum.Nodes[id].PSensitized, repBDD.Nodes[id].PSensitized)
		}
	}
	if repEnum.Engine != "enum" || repBDD.Engine != "bdd" {
		t.Errorf("engines recorded as %q, %q", repEnum.Engine, repBDD.Engine)
	}
}

// TestWithRules: the rule-set option reaches the engines through the public
// API — the pairwise formulation reproduces the closed-form results, the
// no-polarity ablation diverges on reconvergent circuits, and contradictory
// combinations are rejected.
func TestWithRules(t *testing.T) {
	c, err := ParseBenchFile("testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := Run(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	pairwise, err := Run(ctx, c, WithRules(RulesPairwise))
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := Run(ctx, c, WithRules(RulesNoPolarity))
	if err != nil {
		t.Fatal(err)
	}
	samePairwise, diverged := true, false
	for id := range base.Nodes {
		dp := base.Nodes[id].PSensitized - pairwise.Nodes[id].PSensitized
		if dp > 1e-9 || dp < -1e-9 {
			samePairwise = false
		}
		da := base.Nodes[id].PSensitized - ablated.Nodes[id].PSensitized
		if da > 1e-9 || da < -1e-9 {
			diverged = true
		}
	}
	if !samePairwise {
		t.Error("WithRules(RulesPairwise) changed results (same math, must agree)")
	}
	if !diverged {
		t.Error("WithRules(RulesNoPolarity) changed nothing on c17 — option not wired through")
	}
	// Scalar engine honors the option too.
	scalar, err := Run(ctx, c, WithEngine("epp-scalar"), WithRules(RulesNoPolarity))
	if err != nil {
		t.Fatal(err)
	}
	for id := range scalar.Nodes {
		d := scalar.Nodes[id].PSensitized - ablated.Nodes[id].PSensitized
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("node %d: scalar ablation %v != batch ablation %v",
				id, scalar.Nodes[id].PSensitized, ablated.Nodes[id].PSensitized)
		}
	}
	// Contradictions fail fast with descriptive errors.
	for _, tc := range []struct {
		name string
		opts []Option
		want string
	}{
		{"rules-on-sampling", []Option{WithMethod(MethodMonteCarlo), WithRules(RulesPairwise)}, "Rules"},
		{"rules-on-exact", []Option{WithEngine("bdd"), WithRules(RulesNoPolarity)}, "Rules"},
		{"rules-multicycle", []Option{WithFrames(4), WithRules(RulesPairwise)}, "single-frame"},
		{"rules-unknown", []Option{WithRules(RuleSet(9))}, "rule set"},
	} {
		_, err := Run(ctx, c, tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// ParseRuleSet inverts String for all three sets.
	for _, rs := range []RuleSet{RulesClosedForm, RulesPairwise, RulesNoPolarity} {
		got, err := ParseRuleSet(rs.String())
		if err != nil || got != rs {
			t.Errorf("ParseRuleSet(%q) = %v, %v", rs.String(), got, err)
		}
	}
	if _, err := ParseRuleSet("paper"); err == nil {
		t.Error("ParseRuleSet accepted unknown name")
	}
}

// TestWithLatchModelFramesCompose is the public acceptance test of the
// latch-window-weighted multi-cycle mode: WithLatchModel composes with
// WithFrames (supplying both weights the frame composition), the weighted
// run never exceeds the uncoupled one, a model whose strike weight
// saturates at 1 reproduces the uncoupled composition exactly, and invalid
// models are rejected up front.
func TestWithLatchModelFramesCompose(t *testing.T) {
	c, err := GenerateProfile("s1423") // FF-heavy profile
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const frames = 3
	plain, err := Run(ctx, c, WithFrames(frames))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Run(ctx, c, WithFrames(frames), WithLatchModel(DefaultLatchModel()))
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	for id := range plain.Nodes {
		pw, pp := weighted.Nodes[id].PSensitized, plain.Nodes[id].PSensitized
		if pw > pp+1e-15 {
			t.Fatalf("node %d: weighted P %v exceeds uncoupled %v", id, pw, pp)
		}
		if pw < pp-1e-12 {
			dropped = true
		}
		// The timing window moves inside P_sensitized, so the per-node
		// factor becomes the window-free electrical-masking residual —
		// never below the full static factor, and exactly 1 next to an
		// observation point.
		if weighted.Nodes[id].PLatched < plain.Nodes[id].PLatched-1e-15 {
			t.Fatalf("node %d: residual P_latched %v below static %v",
				id, weighted.Nodes[id].PLatched, plain.Nodes[id].PLatched)
		}
		if weighted.Nodes[id].PLatched > 1 {
			t.Fatalf("node %d: residual P_latched %v above 1", id, weighted.Nodes[id].PLatched)
		}
	}
	if !dropped {
		t.Error("latch weighting changed nothing — coupling not wired through")
	}
	// The window is counted exactly once per path either way, so the two
	// totals must stay on the same scale: the coupled mode only restores
	// weight to through-flip-flop detections (uncoupled over-derates them
	// with the transient window) and derates strike-only transients.
	if weighted.TotalFIT > 8*plain.TotalFIT || plain.TotalFIT > 8*weighted.TotalFIT {
		t.Errorf("totals diverged: weighted %v vs uncoupled %v", weighted.TotalFIT, plain.TotalFIT)
	}

	// A transient as wide as the clock saturates the strike weight at 1:
	// the weighted composition then reproduces the uncoupled one exactly.
	wide := DefaultLatchModel()
	wide.PulseWidthPs = wide.ClockPeriodPs
	saturated, err := Run(ctx, c, WithFrames(frames), WithLatchModel(wide))
	if err != nil {
		t.Fatal(err)
	}
	for id := range plain.Nodes {
		if saturated.Nodes[id].PSensitized != plain.Nodes[id].PSensitized {
			t.Fatalf("node %d: saturated weight P %v != uncoupled %v",
				id, saturated.Nodes[id].PSensitized, plain.Nodes[id].PSensitized)
		}
	}

	// Cross-checks: invalid latch models fail validation before any work.
	bad := DefaultLatchModel()
	bad.ClockPeriodPs = -5
	if _, err := Run(ctx, c, WithFrames(frames), WithLatchModel(bad)); err == nil ||
		!strings.Contains(err.Error(), "latch") {
		t.Errorf("negative clock period: err = %v, want latch validation error", err)
	}
	nan := DefaultLatchModel()
	nan.PulseWidthPs = math.NaN()
	if _, err := Run(ctx, c, WithLatchModel(nan)); err == nil ||
		!strings.Contains(err.Error(), "finite") {
		t.Errorf("NaN pulse width: err = %v, want finiteness error", err)
	}
}

// TestLatchWeightedAnalyticVsMonteCarlo: at the public surface the weighted
// analytic and sampling runs agree within the documented mean tolerance.
func TestLatchWeightedAnalyticVsMonteCarlo(t *testing.T) {
	c, err := GenerateProfile("s953")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const frames = 4
	lm := DefaultLatchModel()
	analytic, err := Run(ctx, c, WithFrames(frames), WithLatchModel(lm))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(ctx, c, WithEngine("monte-carlo"), WithFrames(frames),
		WithLatchModel(lm), WithVectors(1<<12), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for id := range analytic.Nodes {
		sum += math.Abs(analytic.Nodes[id].PSensitized - sampled.Nodes[id].PSensitized)
	}
	if mean := sum / float64(len(analytic.Nodes)); mean > 0.08 {
		t.Errorf("mean |analytic − monte-carlo| = %v > 0.08 (latch-weighted, frames=%d)", mean, frames)
	}
}
