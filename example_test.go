package sersim_test

import (
	"context"
	"fmt"
	"log"

	sersim "repro"
)

// Example runs the complete pipeline on a small circuit: parse, one
// single-site EPP query, then the full SER estimate through Run.
func Example() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
g = NAND(a, b)
y = NOT(g)
`)
	if err != nil {
		log.Fatal(err)
	}
	sp := sersim.SignalProbabilities(c, sersim.SPConfig{})
	an, err := sersim.NewAnalyzer(c, sp, sersim.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := an.EPP(c.ByName("g"))
	fmt.Printf("P_sensitized(g) = %.2f\n", res.PSensitized)

	rep, err := sersim.Run(context.Background(), c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most vulnerable: %s\n", rep.TopK(1)[0].Name)
	// Output:
	// P_sensitized(g) = 1.00
	// most vulnerable: g
}

// ExampleRunStream consumes per-node results incrementally: the sweep
// produces values batch by batch and stops early if the loop breaks.
func ExampleRunStream() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
g = NAND(a, b)
y = NOT(g)
`)
	if err != nil {
		log.Fatal(err)
	}
	for n, err := range sersim.RunStream(context.Background(), c) {
		if err != nil {
			log.Fatal(err)
		}
		if n.SERFIT > 0 {
			fmt.Printf("%s: P_sensitized = %.2f\n", n.Name, n.PSensitized)
		}
	}
	// Output:
	// g: P_sensitized = 1.00
	// y: P_sensitized = 1.00
}

// ExampleRun_options shows engine and model selection through functional
// options: the Monte Carlo baseline with a fixed seed and budget.
func ExampleRun_options() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sersim.Run(context.Background(), c,
		sersim.WithMethod(sersim.MethodMonteCarlo),
		sersim.WithVectors(1<<12),
		sersim.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %s\n", rep.Engine)
	// Output:
	// engine: monte-carlo
}
