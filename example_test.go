package sersim_test

import (
	"context"
	"fmt"
	"log"

	sersim "repro"
)

// Example runs the complete pipeline on a small circuit: parse, one
// single-site EPP query, then the full SER estimate through Run.
func Example() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
g = NAND(a, b)
y = NOT(g)
`)
	if err != nil {
		log.Fatal(err)
	}
	sp := sersim.SignalProbabilities(c, sersim.SPConfig{})
	an, err := sersim.NewAnalyzer(c, sp, sersim.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := an.EPP(c.ByName("g"))
	fmt.Printf("P_sensitized(g) = %.2f\n", res.PSensitized)

	rep, err := sersim.Run(context.Background(), c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most vulnerable: %s\n", rep.TopK(1)[0].Name)
	// Output:
	// P_sensitized(g) = 1.00
	// most vulnerable: g
}

// ExampleRunStream consumes per-node results incrementally: the sweep
// produces values batch by batch and stops early if the loop breaks.
func ExampleRunStream() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
g = NAND(a, b)
y = NOT(g)
`)
	if err != nil {
		log.Fatal(err)
	}
	for n, err := range sersim.RunStream(context.Background(), c) {
		if err != nil {
			log.Fatal(err)
		}
		if n.SERFIT > 0 {
			fmt.Printf("%s: P_sensitized = %.2f\n", n.Name, n.PSensitized)
		}
	}
	// Output:
	// g: P_sensitized = 1.00
	// y: P_sensitized = 1.00
}

// ExampleWithFrames follows an error through flip-flops across clock
// cycles: on a three-stage shift register the strike needs exactly four
// frames to reach the primary output, and the frame-unrolled monte-carlo
// engine (WithFrames composed with WithEngine) reports the deterministic
// latency.
func ExampleWithFrames() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
OUTPUT(z)
d0 = BUFF(a)
q0 = DFF(d0)
q1 = DFF(q0)
q2 = DFF(q1)
z  = BUFF(q2)
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, frames := range []int{2, 4} {
		rep, err := sersim.Run(context.Background(), c,
			sersim.WithEngine("monte-carlo"),
			sersim.WithFrames(frames),
			sersim.WithVectors(256),
			sersim.WithSeed(1),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P_detect(d0) within %d cycles = %.2f\n",
			frames, rep.Nodes[c.ByName("d0")].PSensitized)
	}
	// Output:
	// P_detect(d0) within 2 cycles = 0.00
	// P_detect(d0) within 4 cycles = 1.00
}

// ExampleWithLatchModel couples the latching window into a multi-cycle run:
// an error observed only during the strike cycle is a narrow transient that
// must overlap the capture window (the frame-0 weight), so its detection
// contribution is derated, while re-launched flip-flop values would count
// in full.
func ExampleWithLatchModel() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
OUTPUT(y)
g = NOT(a)
y = BUFF(g)
`)
	if err != nil {
		log.Fatal(err)
	}
	lm := sersim.DefaultLatchModel()
	fmt.Printf("strike-frame capture weight = %.2f\n", lm.FrameWeight(0))

	ctx := context.Background()
	plain, err := sersim.Run(ctx, c, sersim.WithFrames(2))
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := sersim.Run(ctx, c, sersim.WithFrames(2), sersim.WithLatchModel(lm))
	if err != nil {
		log.Fatal(err)
	}
	g := c.ByName("g")
	fmt.Printf("uncoupled     P_detect(g) = %.2f\n", plain.Nodes[g].PSensitized)
	fmt.Printf("latch-weighted P_detect(g) = %.2f\n", weighted.Nodes[g].PSensitized)
	// Output:
	// strike-frame capture weight = 0.18
	// uncoupled     P_detect(g) = 1.00
	// latch-weighted P_detect(g) = 0.18
}

// ExampleRun_options shows engine and model selection through functional
// options: the Monte Carlo baseline with a fixed seed and budget.
func ExampleRun_options() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sersim.Run(context.Background(), c,
		sersim.WithMethod(sersim.MethodMonteCarlo),
		sersim.WithVectors(1<<12),
		sersim.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %s\n", rep.Engine)
	// Output:
	// engine: monte-carlo
}
