package sersim_test

import (
	"fmt"
	"log"

	sersim "repro"
)

// Example runs the complete pipeline on a small circuit: parse, signal
// probabilities, one EPP query, full SER estimate.
func Example() {
	c, err := sersim.ParseBenchString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
g = NAND(a, b)
y = NOT(g)
`)
	if err != nil {
		log.Fatal(err)
	}
	sp := sersim.SignalProbabilities(c, sersim.SPConfig{})
	an, err := sersim.NewAnalyzer(c, sp, sersim.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := an.EPP(c.ByName("g"))
	fmt.Printf("P_sensitized(g) = %.2f\n", res.PSensitized)

	rep, err := sersim.Estimate(c, sersim.EstimateConfig{Method: sersim.MethodEPP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most vulnerable: %s\n", rep.TopK(1)[0].Name)
	// Output:
	// P_sensitized(g) = 1.00
	// most vulnerable: g
}
