package sersim

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/netlist"
	"repro/internal/simulate"
)

// TestC17GroundTruth analyzes the genuine ISCAS'85 c17 circuit (the one
// real benchmark small enough to ship and to enumerate exhaustively) and
// pins exact signal probabilities and propagation probabilities, then checks
// the EPP engine and both Monte Carlo baselines against them.
func TestC17GroundTruth(t *testing.T) {
	c, err := bench.ParseFile("testdata/c17.bench")
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 11 || len(c.PIs) != 5 || len(c.POs) != 2 {
		t.Fatalf("c17 structure: %v", c.Stats())
	}

	// Exact signal probabilities under uniform inputs. Hand-checkable:
	// G10 = NAND(G1,G3) -> 3/4; G11 = NAND(G3,G6) -> 3/4;
	// G16 = NAND(G2,G11): P(1) = 1 - P(G2=1,G11=1) = 1 - (1/2)(3/4) = 5/8.
	sp, err := exact.SignalProb(c)
	if err != nil {
		t.Fatal(err)
	}
	wantSP := map[string]float64{
		"G10": 0.75, "G11": 0.75, "G16": 0.625, "G19": 0.625,
	}
	for name, want := range wantSP {
		if got := sp[c.ByName(name)]; math.Abs(got-want) > 1e-12 {
			t.Errorf("exact SP(%s) = %v, want %v", name, got, want)
		}
	}

	// Exact propagation probabilities for every node, via enumeration.
	truth := make([]float64, c.N())
	for id := 0; id < c.N(); id++ {
		p, err := exact.PSensitized(c, netlist.ID(id))
		if err != nil {
			t.Fatal(err)
		}
		truth[id] = p
	}
	// Observed outputs always propagate.
	for _, po := range c.POs {
		if truth[po] != 1 {
			t.Errorf("exact P(%s) = %v, want 1", c.NameOf(po), truth[po])
		}
	}

	// EPP with exact SP: c17 has reconvergent fanout (G11 feeds G16 and
	// G19, G16 feeds both outputs), so EPP is approximate; on a circuit
	// this small the error must stay tight.
	an := core.MustNew(c, sp, core.Options{})
	maxErr := 0.0
	for id := 0; id < c.N(); id++ {
		got := an.EPP(netlist.ID(id)).PSensitized
		if e := math.Abs(got - truth[id]); e > maxErr {
			maxErr = e
		}
	}
	t.Logf("c17: max |EPP - exact| over all 11 sites = %.4f", maxErr)
	if maxErr > 0.1 {
		t.Errorf("EPP error on c17 = %v, expected tight agreement", maxErr)
	}

	// Both Monte Carlo baselines converge to the same truth.
	naive := simulate.NewNaive(c, simulate.MCOptions{Vectors: 1 << 14, Seed: 9})
	bitp := simulate.NewMonteCarlo(c, simulate.MCOptions{Vectors: 1 << 14, Seed: 10})
	for id := 0; id < c.N(); id++ {
		rn := naive.EPP(netlist.ID(id))
		rb := bitp.EPP(netlist.ID(id))
		if math.Abs(rn.PSensitized-truth[id]) > 5*rn.StdErr+1e-9 {
			t.Errorf("naive MC off at %s: %v vs %v", c.NameOf(netlist.ID(id)), rn.PSensitized, truth[id])
		}
		if math.Abs(rb.PSensitized-truth[id]) > 5*rb.StdErr+1e-9 {
			t.Errorf("bit-parallel MC off at %s: %v vs %v", c.NameOf(netlist.ID(id)), rb.PSensitized, truth[id])
		}
	}
}
