// Accuracy: compare the three P_sensitized estimators — analytical EPP,
// random-vector Monte Carlo, and exhaustive enumeration — on circuits small
// enough for exact ground truth, and show how the Monte Carlo error shrinks
// with the vector budget while EPP is a fixed closed-form answer
// (experiment A2).
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	sersim "repro"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/report"
)

func main() {
	const seeds = 6
	vecBudgets := []int{64, 256, 1024, 4096, 16384}

	// Mean absolute error of each estimator vs exhaustive truth.
	maeEPP := 0.0
	maeBlind := 0.0 // polarity-tracking ablation
	maeMC := make([]float64, len(vecBudgets))
	sites := 0

	for seed := uint64(0); seed < seeds; seed++ {
		c := gen.SmallRandom(seed)
		spTruth, err := exact.SignalProb(c)
		if err != nil {
			log.Fatal(err)
		}
		an, err := sersim.NewAnalyzer(c, spTruth, sersim.AnalyzerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		blind, err := sersim.NewAnalyzer(c, spTruth, sersim.AnalyzerOptions{Rules: sersim.RulesNoPolarity})
		if err != nil {
			log.Fatal(err)
		}
		mcs := make([]*sersim.MonteCarlo, len(vecBudgets))
		for i, v := range vecBudgets {
			mcs[i] = sersim.NewMonteCarlo(c, sersim.MCOptions{Vectors: v, Seed: seed + 1})
		}
		for id := 0; id < c.N(); id++ {
			truth, err := sersim.EnumeratePSensitized(c, sersim.ID(id))
			if err != nil {
				log.Fatal(err)
			}
			maeEPP += math.Abs(an.EPP(sersim.ID(id)).PSensitized - truth)
			maeBlind += math.Abs(blind.EPP(sersim.ID(id)).PSensitized - truth)
			for i := range vecBudgets {
				maeMC[i] += math.Abs(mcs[i].EPP(sersim.ID(id)).PSensitized - truth)
			}
			sites++
		}
	}

	fmt.Printf("estimator accuracy vs exhaustive enumeration over %d error sites\n", sites)
	fmt.Printf("(%d random circuits, uniform inputs, exact signal probabilities)\n\n", seeds)

	t := report.NewTable("mean absolute error in P_sensitized",
		"estimator", "MAE", "comment")
	t.AddRowf("EPP (this paper)", maeEPP/float64(sites), "one topological pass per site")
	t.AddRowf("EPP without polarity", maeBlind/float64(sites), "ablation: a̅ folded into a")
	for i, v := range vecBudgets {
		t.AddRowf(fmt.Sprintf("Monte Carlo %5d vec", v), maeMC[i]/float64(sites),
			fmt.Sprintf("~1/sqrt(%d) sampling noise", v))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEPP's residual error is the signal-independence assumption at")
	fmt.Println("reconvergent fanout; Monte Carlo's error is sampling noise that only")
	fmt.Println("shrinks as the square root of the (expensive) vector budget.")
}
