// Multicycle: the sequential extension of the paper's method. The DATE 2005
// analysis counts an error as "sensitized" once it reaches a primary output
// or a flip-flop D input; this example follows errors *through* the
// flip-flops across clock cycles and plots the detection-latency curve
// P(observed at a primary output within k cycles), validated against
// two-machine sequential fault-injection simulation.
//
//	go run ./examples/multicycle
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/seq"
	"repro/internal/sigprob"
	"repro/internal/simulate"
)

func main() {
	c := gen.MustRandom(gen.Params{
		Name: "pipeline", Seed: 21, PIs: 8, POs: 3, FFs: 12, Gates: 150,
	})
	fmt.Println(c.Stats())

	sp := sigprob.Topological(c, sigprob.Config{})
	an, err := seq.New(c, sp)
	if err != nil {
		log.Fatal(err)
	}

	const frames = 8
	// Pick a few error sites at different depths.
	sites := []netlist.ID{
		netlist.ID(c.N() / 8),
		netlist.ID(c.N() / 2),
		netlist.ID(c.N() - 2),
	}
	fmt.Printf("\ndetection probability within k cycles (analytic | simulated):\n")
	fmt.Printf("%-8s", "site")
	for k := 1; k <= frames; k++ {
		fmt.Printf("  k=%-12d", k)
	}
	fmt.Println()
	for _, site := range sites {
		curve := an.PDetectCurve(site, frames)
		fmt.Printf("%-8s", c.NameOf(site))
		for k := 1; k <= frames; k++ {
			sim := simulate.NewSequential(c, simulate.SeqOptions{
				Frames: k, Trials: 1 << 13, Seed: 99,
			}).PDetect(site)
			fmt.Printf("  %.3f | %.3f", curve[k-1], sim.PDetect)
		}
		fmt.Println()
	}

	fmt.Println("\nthe single-cycle paper analysis is the k=1 column plus FF captures;")
	fmt.Println("the multi-cycle extension shows how latched errors surface over time.")
}
