// Multicycle: the sequential extension of the paper's method. The DATE 2005
// analysis counts an error as "sensitized" once it reaches a primary output
// or a flip-flop D input; this example follows errors *through* the
// flip-flops across clock cycles and plots the detection-latency curve
// P(observed at a primary output within k cycles), validated against
// two-machine sequential fault-injection simulation. The same multi-cycle
// analysis runs circuit-wide through Run with the WithFrames option.
//
//	go run ./examples/multicycle
package main

import (
	"context"
	"fmt"
	"log"

	sersim "repro"
	"repro/internal/gen"
)

func main() {
	c := gen.MustRandom(gen.Params{
		Name: "pipeline", Seed: 21, PIs: 8, POs: 3, FFs: 12, Gates: 150,
	})
	fmt.Println(c.Stats())

	sp := sersim.SignalProbabilities(c, sersim.SPConfig{})
	an, err := sersim.NewMultiCycleAnalyzer(c, sp)
	if err != nil {
		log.Fatal(err)
	}

	const frames = 8
	// Pick a few error sites at different depths.
	sites := []sersim.ID{
		sersim.ID(c.N() / 8),
		sersim.ID(c.N() / 2),
		sersim.ID(c.N() - 2),
	}
	fmt.Printf("\ndetection probability within k cycles (analytic | simulated):\n")
	fmt.Printf("%-8s", "site")
	for k := 1; k <= frames; k++ {
		fmt.Printf("  k=%-12d", k)
	}
	fmt.Println()
	for _, site := range sites {
		curve := an.PDetectCurve(site, frames)
		fmt.Printf("%-8s", c.NameOf(site))
		for k := 1; k <= frames; k++ {
			sim := sersim.NewSequentialMC(c, sersim.SeqOptions{
				Frames: k, Trials: 1 << 13, Seed: 99,
			}).PDetect(site)
			fmt.Printf("  %.3f | %.3f", curve[k-1], sim.PDetect)
		}
		fmt.Println()
	}

	// The circuit-wide view: the same frames-bounded detection probability
	// feeds the full SER decomposition through the WithFrames option.
	rep, err := sersim.Run(context.Background(), c, sersim.WithFrames(frames))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal %d-cycle SER: %.4g FIT; most vulnerable: %s\n",
		frames, rep.TotalFIT, rep.TopK(1)[0].Name)

	// The same multi-cycle question answered by sampling: WithFrames also
	// composes with the monte-carlo engine, which runs the frame-unrolled
	// batched fault-injection kernel (one shared good simulation per
	// 64-vector word per frame) instead of the analytic composition.
	mc, err := sersim.Run(context.Background(), c,
		sersim.WithEngine("monte-carlo"), sersim.WithFrames(frames),
		sersim.WithVectors(1<<13), sersim.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte-carlo engine, same frame budget: %.4g FIT (sampled)\n", mc.TotalFIT)
	fmt.Println("(the sampled total tracks the two-machine simulator; the analytic")
	fmt.Println(" composition overestimates where its independence assumption bites)")

	fmt.Println("\nthe single-cycle paper analysis is the k=1 column plus FF captures;")
	fmt.Println("the multi-cycle extension shows how latched errors surface over time.")
}
