// Quickstart: build a small circuit programmatically, compute the error
// propagation probability of one node, run the full SER pipeline with one
// call, and stream the same results incrementally.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	sersim "repro"
)

func main() {
	// A 2-bit equality comparator with a registered result:
	//   eq = AND(XNOR(a0,b0), XNOR(a1,b1));  q = DFF(eq)
	b := sersim.NewBuilder("cmp2")
	a0, b0 := b.Input("a0"), b.Input("b0")
	a1, b1 := b.Input("a1"), b.Input("b1")
	x0 := b.Xnor("x0", a0, b0)
	x1 := b.Xnor("x1", a1, b1)
	eq := b.And("eq", x0, x1)
	b.MarkOutput(eq)
	b.DFF("q", eq)
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Stats())

	// Low-level access: signal probabilities and one single-site EPP query
	// (the paper's core algorithm, step by step).
	sp := sersim.SignalProbabilities(c, sersim.SPConfig{})
	fmt.Printf("signal probability of eq: %.3f\n", sp[eq])

	an, err := sersim.NewAnalyzer(c, sp, sersim.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := an.EPP(x0)
	fmt.Printf("\nSEU at %s: P_sensitized = %.4f (cone of %d on-path signals)\n",
		c.NameOf(x0), res.PSensitized, res.ConeSize)
	for _, o := range res.Outputs {
		fmt.Printf("  reaches %-3s with state %v\n", c.NameOf(o.Output), o.State)
	}

	// The full pipeline — SER(n) = R_SEU × P_latched × P_sensitized for
	// every node — is one cancellable call with functional options (the
	// zero option set reproduces the paper's configuration).
	ctx := context.Background()
	rep, err := sersim.Run(ctx, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal circuit SER: %.4g FIT (engine %s)\n", rep.TotalFIT, rep.Engine)
	fmt.Println("rank  node  kind  SER(FIT)")
	for i, n := range rep.TopK(5) {
		fmt.Printf("%4d  %-4s  %-4s  %.4g\n", i+1, n.Name, c.Node(n.ID).Kind, n.SERFIT)
	}

	// RunStream yields the same per-node values one at a time, in ID order,
	// without materializing a report — the shape that scales to circuits
	// that do not fit one machine's memory.
	fmt.Println("\nstreamed:")
	for n, err := range sersim.RunStream(ctx, c) {
		if err != nil {
			log.Fatal(err)
		}
		if n.SERFIT > 0 {
			fmt.Printf("  %-4s SER = %.4g FIT\n", n.Name, n.SERFIT)
		}
	}
}
