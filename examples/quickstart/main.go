// Quickstart: build a small circuit programmatically, compute the error
// propagation probability of one node, and print the full SER report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/ser"
	"repro/internal/sigprob"
)

func main() {
	// A 2-bit equality comparator with a registered result:
	//   eq = AND(XNOR(a0,b0), XNOR(a1,b1));  q = DFF(eq)
	b := netlist.NewBuilder("cmp2")
	a0, b0 := b.Input("a0"), b.Input("b0")
	a1, b1 := b.Input("a1"), b.Input("b1")
	x0 := b.Xnor("x0", a0, b0)
	x1 := b.Xnor("x1", a1, b1)
	eq := b.And("eq", x0, x1)
	b.MarkOutput(eq)
	b.DFF("q", eq)
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Stats())

	// Step 1: signal probabilities for off-path inputs (uniform inputs).
	sp := sigprob.Topological(c, sigprob.Config{})
	fmt.Printf("signal probability of eq: %.3f\n", sp[eq])

	// Step 2: error propagation probability from one error site.
	an, err := core.New(c, sp, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res := an.EPP(x0)
	fmt.Printf("\nSEU at %s: P_sensitized = %.4f (cone of %d on-path signals)\n",
		c.NameOf(x0), res.PSensitized, res.ConeSize)
	for _, o := range res.Outputs {
		fmt.Printf("  reaches %-3s with state %v\n", c.NameOf(o.Output), o.State)
	}

	// Step 3: the full SER decomposition for every node.
	rep, err := ser.Estimate(c, ser.Config{Method: ser.MethodEPP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal circuit SER: %.4g FIT\n", rep.TotalFIT)
	fmt.Println("rank  node  kind  SER(FIT)")
	for i, n := range rep.TopK(5) {
		fmt.Printf("%4d  %-4s  %-4s  %.4g\n", i+1, n.Name, c.Node(n.ID).Kind, n.SERFIT)
	}
}
