// Latchwindow: the latch-window-weighted multi-cycle SER composition. The
// paper's decomposition derates every node by a static latching-window
// factor P_latched(n) — the strike transient racing a capture window. A
// multi-cycle analysis adds a second, frame-resolved question: in WHICH
// cycle is the error observed? A detection during the strike cycle is still
// a narrow transient that must overlap the observing register's window,
// while a detection in any later frame is a full-cycle level re-launched
// from a flip-flop, captured with certainty. Combining WithFrames with
// WithLatchModel weights each frame's detection contribution accordingly
// (LatchModel.FrameWeight), on the analytic engines and the Monte Carlo
// engine alike — the two agree because the sampling side composes the same
// quantity from the kernel's integer per-frame detection counters.
//
//	go run ./examples/latchwindow
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	sersim "repro"
	"repro/internal/gen"
)

func main() {
	c := gen.MustRandom(gen.Params{
		Name: "pipeline", Seed: 21, PIs: 8, POs: 3, FFs: 12, Gates: 150,
	})
	fmt.Println(c.Stats())

	// The per-frame capture weights of the default model: a 150 ps transient
	// against a 30 ps window in a 1 ns cycle is latched ~18% of the time;
	// a re-launched flip-flop value always is.
	lm := sersim.DefaultLatchModel()
	fmt.Printf("\nper-frame capture weights (clock %v ps, pulse %v ps, window %v ps):\n",
		lm.ClockPeriodPs, lm.PulseWidthPs, lm.WindowPs)
	for k := 0; k < 4; k++ {
		fmt.Printf("  frame %d: %.3f\n", k, lm.FrameWeight(k))
	}

	const frames = 4
	ctx := context.Background()

	// Uncoupled multi-cycle run vs the latch-window-weighted mode: same
	// engine, same frame budget. Uncoupled, every detection is derated by
	// the static transient window — including through-flip-flop detections
	// that are really full-cycle values. Weighted, the window applies only
	// to the strike frame (inside P_sensitized) and the per-node factor
	// keeps just the electrical-masking residual, so nodes observed through
	// flip-flops regain weight while strike-only transients keep paying the
	// window once.
	plain, err := sersim.Run(ctx, c, sersim.WithFrames(frames))
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := sersim.Run(ctx, c, sersim.WithFrames(frames), sersim.WithLatchModel(lm))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d-cycle SER, analytic engine:\n", frames)
	fmt.Printf("  uncoupled composition:     %.4g FIT\n", plain.TotalFIT)
	fmt.Printf("  latch-window weighted:     %.4g FIT\n", weighted.TotalFIT)

	// The same weighted quantity by fault injection: the monte-carlo engine
	// folds its per-frame integer detection counters (strike-only trials
	// derated by FrameWeight(0), later-frame trials in full) into the
	// identical composition, so the two engines agree statistically.
	mc, err := sersim.Run(ctx, c,
		sersim.WithEngine("monte-carlo"), sersim.WithFrames(frames),
		sersim.WithLatchModel(lm), sersim.WithVectors(1<<13), sersim.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	mae := 0.0
	for id := range weighted.Nodes {
		mae += math.Abs(weighted.Nodes[id].PSensitized - mc.Nodes[id].PSensitized)
	}
	mae /= float64(len(weighted.Nodes))
	fmt.Printf("  monte-carlo engine:        %.4g FIT (sampled; mean |diff| %.4f per node)\n",
		mc.TotalFIT, mae)

	// Frame-resolved ranking: nodes whose errors are only ever seen as the
	// strike transient keep the single window derating, while nodes feeding
	// deep flip-flop paths regain the weight the uncoupled mode wrongly
	// took from them — so the weighted mode can reshuffle the hardening
	// priorities, the paper's stated use-case.
	fmt.Printf("\nmost vulnerable (weighted): ")
	for i, n := range weighted.TopK(3) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(n.Name)
	}
	fmt.Printf("\nmost vulnerable (uncoupled): ")
	for i, n := range plain.TopK(3) {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(n.Name)
	}
	fmt.Println()
}
