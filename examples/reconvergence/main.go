// Reconvergence: the paper's Figure 1 worked example, reproduced end to end
// through the public API.
//
// The circuit has reconvergent paths from the error site A to the output H
// (one through D with even polarity, one through E/G with odd polarity), the
// case that defeats plain signal-probability propagation and motivates the
// paper's four-valued polarity-tracking states.
//
//	go run ./examples/reconvergence
//
// Expected states (paper §2):
//
//	P(E) = 1(a̅)
//	P(G) = 0.7(a̅) + 0.3(0)
//	P(D) = 0.2(a) + 0.8(0)
//	P(H) = 0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)
package main

import (
	"fmt"
	"log"

	sersim "repro"
)

const fig1 = `
# Figure 1 of Asadi & Tahoori, DATE 2005
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
G = AND(E, F)
D = AND(A, B)
H = OR(C, D, G)
`

func main() {
	c, err := sersim.ParseBenchString(fig1)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's off-path signal probabilities.
	prob := make([]float64, c.N())
	prob[c.ByName("A")] = 0.5 // A is the error site; its SP is not consulted
	prob[c.ByName("B")] = 0.2
	prob[c.ByName("C")] = 0.3
	prob[c.ByName("F")] = 0.7
	sp := sersim.SignalProbabilities(c, sersim.SPConfig{SourceProb: prob})

	an, err := sersim.NewAnalyzer(c, sp, sersim.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res := an.EPP(c.ByName("A"))

	fmt.Println("SEU at gate A; traversing on-path signals in topological order:")
	for _, name := range []string{"A", "E", "G", "D", "H"} {
		st, on := an.StateOf(c.ByName(name))
		if !on {
			log.Fatalf("%s unexpectedly off-path", name)
		}
		fmt.Printf("  P(%s) = %v\n", name, st)
	}
	fmt.Printf("\nP_sensitized(A) = Pa(H) + Pa̅(H) = %.3f\n", res.PSensitized)

	// Cross-check against the paper's numbers.
	st, _ := an.StateOf(c.ByName("H"))
	want := "0.042(a) + 0.392(a̅) + 0.168(0) + 0.398(1)"
	if st.String() != want {
		log.Fatalf("MISMATCH: got %v, paper says %s", st, want)
	}
	fmt.Println("matches the paper's worked example exactly.")
}
